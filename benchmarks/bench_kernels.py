"""Micro-benchmarks of the hot kernels (multi-round, timing-stable).

These are the components whose cost the paper's complexity analysis talks
about: witness counting (the join), mutual-best selection, the MapReduce
engine, and the graph generators that feed every experiment.  Every
dict-backend kernel is benchmarked next to its ``backend="csr"`` array
twin on the same 3000-node preferential-attachment workload, so the JSON
emitted by ``--benchmark-json`` (committed as ``BENCH_kernels.json``)
records the dict-vs-csr trajectory over time; the acceptance floor is a
3x witness-counting speedup, and both the sparse-matmul and pure-numpy
joins clear it.

The ``_native`` variants add the third backend column: the compiled
join/selection kernels of :mod:`repro.core.native`, benchmarked on
the same workload (floor: 2x witness join over the csr column).  On a
machine without a C toolchain they skip — the committed JSON then
records the honest fallback picture rather than a silent gap.
"""

import numpy as np
import pytest

from repro.core import kernels
from repro.core.config import MatcherConfig
from repro.core.matcher import UserMatching
from repro.core.policy import select_mutual_best
from repro.core.scoring import (
    count_similarity_witnesses,
    count_similarity_witnesses_arrays,
)
from repro.generators.erdos_renyi import gnp_graph
from repro.generators.preferential_attachment import (
    preferential_attachment_graph,
)
from repro.generators.rmat import rmat_graph
from repro.graphs.csr import CSRGraph
from repro.graphs.pair_index import GraphPairIndex
from repro.mapreduce.engine import LocalMapReduce, MapReduceJob, sum_combiner
from repro.sampling.edge_sampling import independent_copies
from repro.seeds.generators import sample_seeds


@pytest.fixture(scope="module")
def workload():
    graph = preferential_attachment_graph(3000, 10, seed=1)
    pair = independent_copies(graph, 0.5, seed=2)
    seeds = sample_seeds(pair, 0.1, seed=3)
    return pair, seeds


@pytest.fixture(scope="module")
def pair_index(workload):
    """Interned view of the workload (built once, as in a real run)."""
    pair, seeds = workload
    index = GraphPairIndex(pair.g1, pair.g2)
    link_l, link_r = index.intern_links(seeds)
    linked1 = np.zeros(index.n1, dtype=bool)
    linked2 = np.zeros(index.n2, dtype=bool)
    linked1[link_l] = True
    linked2[link_r] = True
    floor1, floor2 = index.eligibility(2)
    return index, link_l, link_r, ~linked1 & floor1, ~linked2 & floor2


def test_bench_witness_counting(benchmark, workload):
    pair, seeds = workload
    scores, emitted = benchmark(
        count_similarity_witnesses, pair.g1, pair.g2, seeds, 2
    )
    assert emitted > 0


def test_bench_witness_counting_csr(benchmark, pair_index):
    """The csr join, auto path (sparse matmul when scipy is present)."""
    index, link_l, link_r, elig1, elig2 = pair_index
    scores, emitted = benchmark(
        kernels.count_witnesses, index, link_l, link_r, elig1, elig2
    )
    assert emitted > 0


def test_bench_witness_counting_csr_numpy(benchmark, pair_index):
    """The csr join, pure-numpy fallback (no scipy)."""
    index, link_l, link_r, elig1, elig2 = pair_index

    def run():
        return kernels.count_witnesses(
            index, link_l, link_r, elig1, elig2, use_sparse=False
        )

    scores, emitted = benchmark(run)
    assert emitted > 0


@pytest.fixture(scope="module")
def native_kernels():
    from repro.core.native import load_native_library

    kernels_handle = load_native_library(warn=False)
    if kernels_handle is None:
        pytest.skip("no C toolchain: backend='native' falls back to csr")
    return kernels_handle


def test_bench_witness_counting_native(benchmark, pair_index, native_kernels):
    """The compiled row-major bitmap join (sort-free, direct-write)."""
    index, link_l, link_r, elig1, elig2 = pair_index

    def run():
        return kernels.count_witnesses(
            index, link_l, link_r, elig1, elig2, native=native_kernels
        )

    scores, emitted = benchmark(run)
    assert emitted > 0


def test_bench_mutual_best_selection(benchmark, workload):
    pair, seeds = workload
    scores, _ = count_similarity_witnesses(
        pair.g1, pair.g2, seeds, min_degree=2
    )
    links = benchmark(select_mutual_best, scores, 2)
    assert links


def test_bench_mutual_best_selection_csr(benchmark, workload):
    pair, seeds = workload
    index = GraphPairIndex(pair.g1, pair.g2)
    scores, _ = count_similarity_witnesses_arrays(index, seeds, min_degree=2)
    left, right, _cands = benchmark(
        kernels.select_mutual_best_arrays, scores, 2
    )
    assert len(left)


def test_bench_mutual_best_selection_native(
    benchmark, workload, native_kernels
):
    """The compiled single-pass argmax selection."""
    pair, seeds = workload
    index = GraphPairIndex(pair.g1, pair.g2)
    scores, _ = count_similarity_witnesses_arrays(
        index, seeds, min_degree=2, native=native_kernels
    )
    left, right, _cands = benchmark(
        kernels.select_mutual_best_arrays, scores, 2
    )
    assert len(left)


def test_bench_full_matcher(benchmark, workload):
    pair, seeds = workload
    matcher = UserMatching(MatcherConfig(threshold=2, iterations=1))
    result = benchmark(matcher.run, pair.g1, pair.g2, seeds)
    assert result.num_new_links > 0


def test_bench_full_matcher_csr(benchmark, workload):
    """End-to-end csr backend, interning included (the honest number)."""
    pair, seeds = workload
    matcher = UserMatching(
        MatcherConfig(threshold=2, iterations=1, backend="csr")
    )
    result = benchmark(matcher.run, pair.g1, pair.g2, seeds)
    assert result.num_new_links > 0


def test_bench_full_matcher_native(benchmark, workload, native_kernels):
    """End-to-end native backend (interning + compiled kernels)."""
    pair, seeds = workload
    matcher = UserMatching(
        MatcherConfig(threshold=2, iterations=1, backend="native")
    )
    result = benchmark(matcher.run, pair.g1, pair.g2, seeds)
    assert result.num_new_links > 0


def test_bench_csr_construction(benchmark, workload):
    """CSRGraph build (one np.lexsort, no per-node Python sorts)."""
    pair, _seeds = workload
    csr = benchmark(CSRGraph, pair.g1)
    assert csr.num_nodes == pair.g1.num_nodes


def test_bench_pair_index_build(benchmark, workload):
    """Full interning cost — what backend="csr" pays once per run."""
    pair, _seeds = workload
    index = benchmark(GraphPairIndex, pair.g1, pair.g2)
    assert index.n1 == pair.g1.num_nodes


def test_bench_generator_pa(benchmark):
    g = benchmark(preferential_attachment_graph, 2000, 10, 7)
    assert g.num_nodes == 2000


def test_bench_generator_gnp(benchmark):
    g = benchmark(gnp_graph, 2000, 0.01, 7)
    assert g.num_nodes == 2000


def test_bench_generator_rmat(benchmark):
    g = benchmark(rmat_graph, 11, 16 * (1 << 11), seed=7)
    assert g.num_nodes > 0


def test_bench_mapreduce_engine(benchmark):
    def map_fn(_k, text):
        for token in text:
            yield (token, 1)

    def reduce_fn(token, counts):
        yield (token, sum(counts))

    job = MapReduceJob("count", map_fn, reduce_fn, sum_combiner)
    records = [(i, "abcdefg" * 10) for i in range(300)]

    def run():
        return LocalMapReduce().run(job, records)

    out = benchmark(run)
    assert dict(out)["a"] == 3000
