"""Micro-benchmarks of the hot kernels (multi-round, timing-stable).

These are the components whose cost the paper's complexity analysis talks
about: witness counting (the join), mutual-best selection, the MapReduce
engine, and the graph generators that feed every experiment.
"""

import pytest

from repro.core.config import MatcherConfig
from repro.core.matcher import UserMatching
from repro.core.policy import select_mutual_best
from repro.core.scoring import count_similarity_witnesses
from repro.generators.erdos_renyi import gnp_graph
from repro.generators.preferential_attachment import (
    preferential_attachment_graph,
)
from repro.generators.rmat import rmat_graph
from repro.mapreduce.engine import LocalMapReduce, MapReduceJob, sum_combiner
from repro.sampling.edge_sampling import independent_copies
from repro.seeds.generators import sample_seeds


@pytest.fixture(scope="module")
def workload():
    graph = preferential_attachment_graph(3000, 10, seed=1)
    pair = independent_copies(graph, 0.5, seed=2)
    seeds = sample_seeds(pair, 0.1, seed=3)
    return pair, seeds


def test_bench_witness_counting(benchmark, workload):
    pair, seeds = workload
    scores, emitted = benchmark(
        count_similarity_witnesses, pair.g1, pair.g2, seeds, 2
    )
    assert emitted > 0


def test_bench_mutual_best_selection(benchmark, workload):
    pair, seeds = workload
    scores, _ = count_similarity_witnesses(
        pair.g1, pair.g2, seeds, min_degree=2
    )
    links = benchmark(select_mutual_best, scores, 2)
    assert links


def test_bench_full_matcher(benchmark, workload):
    pair, seeds = workload
    matcher = UserMatching(MatcherConfig(threshold=2, iterations=1))
    result = benchmark(matcher.run, pair.g1, pair.g2, seeds)
    assert result.num_new_links > 0


def test_bench_generator_pa(benchmark):
    g = benchmark(preferential_attachment_graph, 2000, 10, 7)
    assert g.num_nodes == 2000


def test_bench_generator_gnp(benchmark):
    g = benchmark(gnp_graph, 2000, 0.01, 7)
    assert g.num_nodes == 2000


def test_bench_generator_rmat(benchmark):
    g = benchmark(rmat_graph, 11, 16 * (1 << 11), seed=7)
    assert g.num_nodes > 0


def test_bench_mapreduce_engine(benchmark):
    def map_fn(_k, text):
        for token in text:
            yield (token, 1)

    def reduce_fn(token, counts):
        yield (token, sum(counts))

    job = MapReduceJob("count", map_fn, reduce_fn, sum_combiner)
    records = [(i, "abcdefg" * 10) for i in range(300)]

    def run():
        return LocalMapReduce().run(job, records)

    out = benchmark(run)
    assert dict(out)["a"] == 3000
