"""Extension benches: the percolation threshold and Theorem 1 validation.

Not figures of the paper itself, but quantitative support for two of its
claims: the seed model's viability regime (related work [31]) and the
Section 4.1 witness-gap analysis.
"""

from benchmarks.conftest import run_once
from repro.experiments import percolation, theory_validation


def test_bench_percolation(benchmark):
    result = run_once(
        benchmark,
        percolation.run,
        n=6000,
        seed_counts=(15, 40, 80, 200),
        seed=0,
    )
    print()
    print(result.to_table())
    rows = result.rows
    # Sharp transition: sub-threshold runs fizzle, super-threshold
    # saturates.
    assert rows[0]["recall"] < 0.2
    assert rows[-1]["recall"] > 0.8
    recalls = [r["recall"] for r in rows]
    assert recalls == sorted(recalls)


def test_bench_theory_validation(benchmark):
    result = run_once(benchmark, theory_validation.run, n=2000, seed=0)
    print()
    print(result.to_table())
    correct, wrong = result.rows
    # Theorem 1's separation, measured.
    assert correct["measured_mean"] > 5 * wrong["measured_mean"]
    # The formulas predict the means within a modest tolerance.
    assert (
        abs(correct["measured_mean"] - correct["predicted_mean"])
        < 0.25 * correct["predicted_mean"]
    )
