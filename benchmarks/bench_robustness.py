"""Extension benches — the §3.1 generalizations and the scale trend.

These go beyond the paper's own evaluation: noise edges, per-copy vertex
deletion, corrupted seeds, error-vs-scale decay, and a deliberately hard
small-world substrate.  EXPERIMENTS.md records the measured rows.
"""

from benchmarks.conftest import run_once
from repro.experiments import robustness


def test_bench_noise_edges(benchmark):
    result = run_once(
        benchmark,
        robustness.run_noise_edges,
        n=5000,
        noise_fractions=(0.0, 0.10, 0.20),
        seed=0,
    )
    print()
    print(result.to_table())
    clean = result.rows[0]
    noisiest = result.rows[-1]
    # Graceful degradation: 20% noise costs little precision or recall.
    assert noisiest["new_error_%"] < clean["new_error_%"] + 3.0
    assert noisiest["recall"] > clean["recall"] - 0.05


def test_bench_vertex_deletion(benchmark):
    result = run_once(
        benchmark,
        robustness.run_vertex_deletion,
        n=5000,
        deletion_probs=(0.0, 0.2),
        seed=0,
    )
    print()
    print(result.to_table())
    deleted = result.rows[-1]
    assert deleted["recall"] > 0.8
    assert deleted["new_error_%"] < 6.0


def test_bench_noisy_seeds(benchmark):
    result = run_once(
        benchmark,
        robustness.run_noisy_seeds,
        n=5000,
        error_rates=(0.0, 0.10, 0.25),
        seed=0,
    )
    print()
    print(result.to_table())
    # Output error stays an order of magnitude below input error.
    worst = result.rows[-1]
    assert worst["new_error_%"] < 0.3 * worst["seed_error_%"]
    assert worst["recall"] > 0.85


def test_bench_scale_trend(benchmark):
    result = run_once(
        benchmark,
        robustness.run_scale_trend,
        ns=(2000, 5000, 10_000),
        seed=0,
    )
    print()
    print(result.to_table())
    errors = [row["error_%"] for row in result.rows]
    # The error rate decays with n (the paper's 0-error limit).
    assert errors[-1] < errors[0]


def test_bench_small_world(benchmark):
    result = run_once(benchmark, robustness.run_small_world, n=3000, seed=0)
    print()
    print(result.to_table())
    # The hard case: flat degrees + local neighborhoods. We assert the
    # honest outcome — markedly worse than every social substrate.
    on = next(r for r in result.rows if r["bucketing"] == "on")
    assert on["recall"] < 0.5
    assert on["new_error_%"] > 5.0
