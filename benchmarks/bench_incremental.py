"""Warm-start vs cold-run latency across a delta-fraction sweep.

The incremental engine's pitch is that absorbing a delta costs work
proportional to the delta's frontier, not the graph.  This suite pins
the claim to numbers: a PA + independent-deletion workload is built,
a fraction of each copy's edges is held back, and the benchmark times
``IncrementalReconciler.apply`` for that batch against the cold
comparator ``test_bench_cold_rerun`` (a from-scratch ``csr`` run on the
same post-delta graphs).  As the fraction shrinks the warm apply should
dip well below the cold bar — the committed ``BENCH_incremental.json``
records the crossover so the CI regression gate
(``scripts/check_bench_regression.py``) catches anyone who serializes
the dirty-set path.

Links are asserted identical to the cold run en route: warm-starting is
an execution strategy, never an approximation.
"""

import pytest

from repro.core.config import MatcherConfig
from repro.core.matcher import UserMatching
from repro.generators.preferential_attachment import (
    preferential_attachment_graph,
)
from repro.incremental import GraphDelta, IncrementalReconciler
from repro.incremental.stream import hold_back_stream
from repro.sampling.edge_sampling import independent_copies
from repro.seeds.generators import sample_seeds

N = 6000
M = 10
#: Fractions of each copy's edge count arriving as one delta batch.
DELTA_FRACTIONS = (0.0005, 0.005, 0.02)

_CONFIG = dict(threshold=2, iterations=1)


def build_workload(n=N, m=M, seed=0):
    """Full pair + seeds (deterministic)."""
    graph = preferential_attachment_graph(n, m, seed=seed)
    pair = independent_copies(graph, 0.6, seed=seed + 100)
    seeds = sample_seeds(pair, 0.08, seed=seed + 200)
    return pair, seeds


@pytest.fixture(scope="module")
def workload():
    return build_workload()


def carve(pair, fraction, seed=300):
    """Base copies with a *fraction* of edges held back as the stream.

    Same carving recipe as ``repro stream``
    (:func:`repro.incremental.stream.hold_back_stream`), on copies so
    the full pair stays intact for the cold comparator.
    """
    base1, base2 = pair.g1.copy(), pair.g2.copy()
    stream1, stream2 = hold_back_stream(base1, base2, fraction, seed)
    return base1, base2, stream1, stream2


@pytest.mark.parametrize(
    "fraction", DELTA_FRACTIONS, ids=lambda f: f"frac={f}"
)
def test_bench_warm_apply(benchmark, workload, fraction):
    """One warm ``apply`` of a *fraction*-sized delta (fresh engine/round)."""
    pair, seeds = workload
    cold = UserMatching(
        MatcherConfig(backend="csr", **_CONFIG)
    ).run(pair.g1, pair.g2, seeds)

    def setup():
        base1, base2, stream1, stream2 = carve(pair, fraction)
        engine = IncrementalReconciler(MatcherConfig(**_CONFIG))
        engine.start(base1, base2, seeds)
        delta = GraphDelta.build(added_edges1=stream1, added_edges2=stream2)
        return (engine, delta), {}

    def apply(engine, delta):
        outcome = engine.apply(delta)
        # Warm-starting must never change a link.
        assert outcome.result.links == cold.links
        return outcome

    outcome = benchmark.pedantic(apply, setup=setup, rounds=3, iterations=1)
    benchmark.extra_info["delta_fraction"] = fraction
    benchmark.extra_info["delta_edges"] = int(
        pair.g1.num_edges * fraction
    ) + int(pair.g2.num_edges * fraction)
    benchmark.extra_info["dirty_links"] = outcome.dirty_links
    benchmark.extra_info["rescored_rounds"] = outcome.rescored_rounds
    benchmark.extra_info["full_rounds"] = outcome.full_rounds


def test_bench_cold_rerun(benchmark, workload):
    """The comparator: a from-scratch ``csr`` run on the full graphs."""
    pair, seeds = workload
    matcher = UserMatching(MatcherConfig(backend="csr", **_CONFIG))
    result = benchmark.pedantic(
        matcher.run,
        args=(pair.g1, pair.g2, seeds),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["links"] = result.num_links
    assert result.num_new_links > 0


def test_bench_checkpoint_roundtrip(benchmark, workload, tmp_path):
    """Persist + resume cost for the stop/persist/resume loop."""
    pair, seeds = workload
    base1, base2, _stream1, _stream2 = carve(pair, 0.005)
    engine = IncrementalReconciler(MatcherConfig(**_CONFIG))
    engine.start(base1, base2, seeds)
    path = tmp_path / "state.npz"

    def roundtrip():
        engine.save_checkpoint(path)
        return IncrementalReconciler.resume(path)

    resumed = benchmark.pedantic(roundtrip, rounds=3, iterations=1)
    assert resumed.result.links == engine.result.links
    benchmark.extra_info["checkpoint_bytes"] = path.stat().st_size
