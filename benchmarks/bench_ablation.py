"""Ablation benches (§5, final question): bucketing, baseline, iterations.

Paper: removing degree bucketing inflates bad matches by ~50% (with
similar good counts); the simple common-neighbors algorithm has much
worse precision on Wikipedia (27.87% vs 17.31% error).
"""

from benchmarks.conftest import run_once
from repro.experiments import ablation


def test_bench_ablation_bucketing(benchmark):
    result = run_once(benchmark, ablation.run_bucketing, n=6000, seed=0)
    print()
    print(result.to_table())
    forced = [r for r in result.rows if r["tie_policy"] == "lowest_id"]
    on = next(r for r in forced if r["bucketing"] == "on")
    off = next(r for r in forced if r["bucketing"] == "off")
    # The paper's observation: similar good, substantially more bad.
    assert off["bad"] > 1.2 * on["bad"]
    assert abs(off["good"] - on["good"]) < 0.15 * on["good"]


def test_bench_ablation_wikipedia(benchmark):
    result = run_once(
        benchmark,
        ablation.run_simple_on_wikipedia,
        n_concepts=8000,
        seed=0,
    )
    print()
    print(result.to_table())
    um = next(r for r in result.rows if r["algorithm"] == "user-matching")
    forced = next(
        r
        for r in result.rows
        if r["algorithm"] == "common-neighbors (forced ties)"
    )
    # The tie-forcing simple algorithm has much worse precision.
    assert forced["new_error_%"] > um["new_error_%"]


def test_bench_ablation_iterations(benchmark):
    result = run_once(
        benchmark, ablation.run_iterations, n=5000, ks=(1, 2, 3), seed=0
    )
    print()
    print(result.to_table())
    goods = [r["good"] for r in result.rows]
    # Extra iterations never lose links; k=2 captures most of the gain.
    assert goods[1] >= goods[0]
    assert goods[2] >= goods[1]
    assert goods[2] - goods[1] <= max(goods[1] - goods[0], 50)


def test_bench_ablation_tie_policy(benchmark):
    result = run_once(benchmark, ablation.run_tie_policy, n=4000, seed=0)
    print()
    print(result.to_table())
    skip = next(r for r in result.rows if r["tie_policy"] == "skip")
    forced = next(r for r in result.rows if r["tie_policy"] == "lowest_id")
    # Skipping ties trades recall for precision.
    assert skip["new_error_%"] <= forced["new_error_%"]
