"""Table 5 (bottom) bench — Wikipedia-like interlanguage reconciliation.

Paper: starting from 10% of the (noisy, human-made) interlanguage links,
the algorithm nearly triples the link count, with 17.5% error among new
links — some of which trace back to errors in the ground-truth links
themselves.
"""

from benchmarks.conftest import run_once
from repro.experiments import table5_realworld


def test_bench_table5_wikipedia(benchmark):
    result = run_once(
        benchmark,
        table5_realworld.run_wikipedia,
        n_concepts=8000,
        link_fraction=0.10,
        thresholds=(5, 3),
        iterations=2,
        seed=0,
    )
    print()
    print(result.to_table())
    by_threshold = {r["threshold"]: r for r in result.rows}
    # The link set must grow substantially (paper: ~3x).
    assert by_threshold[3]["links_vs_seeds"] > 1.5
    # Error is an order of magnitude above the clean-copy experiments
    # but far below coin-flipping (paper: 17.5%).
    assert by_threshold[3]["new_error_%"] < 35.0
    # The stricter threshold trades recall for precision.
    assert (
        by_threshold[5]["new_error_%"]
        <= by_threshold[3]["new_error_%"] + 1.0
    )
