"""Shared benchmark configuration.

Benchmarks regenerate every table and figure of the paper's evaluation at
laptop scale (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md
for paper-vs-measured numbers).  Heavy end-to-end benchmarks run with
``benchmark.pedantic(rounds=1)`` — the quantity of interest is the shape
of the result, not nanosecond-stable timing; micro-benchmarks of the hot
kernels use normal rounds.
"""

from __future__ import annotations

import pytest

#: ``machine_info`` keys kept in the emitted ``--benchmark-json``.  The
#: default dump embeds the full cpuinfo blob (the flags list alone is
#: hundreds of entries, ~170 KB per committed BENCH file); the committed
#: trajectory only needs enough to identify the machine class.
MACHINE_INFO_KEYS = (
    "machine",
    "system",
    "python_implementation",
    "python_version",
)

#: Sub-keys kept from the nested ``cpu`` blob.
CPU_INFO_KEYS = ("arch", "brand_raw", "count")


def pytest_benchmark_update_machine_info(config, machine_info):
    """Trim the JSON header to the :data:`MACHINE_INFO_KEYS` allowlist."""
    cpu = machine_info.get("cpu") or {}
    trimmed = {
        key: machine_info.get(key) for key in MACHINE_INFO_KEYS
    }
    trimmed["cpu"] = {key: cpu.get(key) for key in CPU_INFO_KEYS}
    machine_info.clear()
    machine_info.update(trimmed)


def run_once(benchmark, fn, *args, **kwargs):
    """Time *fn* exactly once and return its result."""
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1
    )


@pytest.fixture(scope="session")
def print_tables(pytestconfig):
    """Whether to print experiment tables (pass ``-s`` to see them)."""
    return True
