"""Shared benchmark configuration.

Benchmarks regenerate every table and figure of the paper's evaluation at
laptop scale (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md
for paper-vs-measured numbers).  Heavy end-to-end benchmarks run with
``benchmark.pedantic(rounds=1)`` — the quantity of interest is the shape
of the result, not nanosecond-stable timing; micro-benchmarks of the hot
kernels use normal rounds.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Time *fn* exactly once and return its result."""
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1
    )


@pytest.fixture(scope="session")
def print_tables(pytestconfig):
    """Whether to print experiment tables (pass ``-s`` to see them)."""
    return True
