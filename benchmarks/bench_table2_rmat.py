"""Table 2 bench — R-MAT scaling ladder, relative running time.

Paper: RMAT24 -> RMAT26 -> RMAT28 relative times 1 / 1.199 / 12.544.  We
time the matcher on three rungs 4x apart in node count (pytest-benchmark's
comparison view shows the ladder; the driver records the relative times).
"""

import pytest

from repro.core.config import MatcherConfig
from repro.core.matcher import UserMatching
from repro.experiments import table2_rmat
from repro.generators.rmat import rmat_graph
from repro.sampling.edge_sampling import independent_copies
from repro.seeds.generators import sample_seeds

SCALES = (9, 11, 13)


@pytest.fixture(scope="module")
def ladder():
    workloads = {}
    for scale in SCALES:
        graph = rmat_graph(scale, 16 * (1 << scale), seed=scale)
        pair = independent_copies(graph, 0.5, seed=scale + 100)
        seeds = sample_seeds(pair, 0.10, seed=scale + 200)
        workloads[scale] = (pair, seeds)
    return workloads


@pytest.mark.parametrize("scale", SCALES)
def test_bench_rmat_rung(benchmark, ladder, scale):
    pair, seeds = ladder[scale]
    matcher = UserMatching(MatcherConfig(threshold=2, iterations=1))

    result = benchmark.pedantic(
        matcher.run,
        args=(pair.g1, pair.g2, seeds),
        rounds=1,
        iterations=1,
    )
    assert result.num_links >= len(seeds)


def test_bench_table2_driver(benchmark):
    result = benchmark.pedantic(
        table2_rmat.run,
        kwargs=dict(scales=SCALES, seed=0),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_table())
    times = [row["relative_time"] for row in result.rows]
    # The ladder must be increasing: bigger graphs cost more.
    assert times[0] == 1.0
    assert times[1] >= 1.0
    assert times[2] >= times[1]
