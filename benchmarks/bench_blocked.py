"""Time-vs-budget and peak-memory curves for blocked execution.

Benchmarks the ``backend="csr"`` matcher end-to-end under a sweep of
``memory_budget_mb`` values on the Table-2 R-MAT rung past 3000 nodes,
recording for every budget both the wall-clock mean (the benchmark
statistic) and the measured peak allocation of one run
(``extra_info["peak_mb"]``, via :class:`repro.utils.memory.MemoryTracker`)
— so the JSON committed as ``BENCH_blocked.json`` carries the whole
time-vs-budget / memory-vs-budget trade-off curve, not just a headline
number.  A kernel-level pair (monolithic vs forced-multi-block round)
isolates the streaming merge's overhead from the matcher around it.

The million-node rung (`million_rung`, RMAT20 = 1,048,576 addressable
nodes under a stated budget, peak RSS recorded) is exposed as
``test_bench_million_rung`` but only runs when ``REPRO_BENCH_MILLION=1``
— it needs minutes and gigabytes, which would starve the CI bench-smoke
job; the nightly workflow runs the same driver at a smoke scale instead,
and EXPERIMENTS.md records the full rung's measured numbers.

Links are asserted identical across every budget en route: the knob
must never change the output, only the execution footprint.
"""

import os

import pytest

from repro.core.config import MatcherConfig
from repro.core.matcher import UserMatching
from repro.core.shards import plan_witness_blocks
from repro.experiments import table2_rmat
from repro.generators.rmat import rmat_graph
from repro.graphs.pair_index import GraphPairIndex
from repro.sampling.edge_sampling import independent_copies
from repro.seeds.generators import sample_seeds
from repro.utils.memory import MemoryTracker, peak_rss_mb

#: Same rung as bench_parallel: R-MAT scale 12, Graph500 edge factor.
SCALE = 12
EDGE_FACTOR = 16
#: None = monolithic baseline; the finite budgets descend far enough
#: that the last one forces multi-block rounds at this rung's size.
BUDGETS = (None, 8, 2, 1)


def build_workload(scale=SCALE, edge_factor=EDGE_FACTOR, seed=0):
    """The bench workload: R-MAT pair + 10% seeds (Table-2 recipe)."""
    graph = rmat_graph(scale, edge_factor * (1 << scale), seed=seed)
    pair = independent_copies(graph, 0.5, seed=seed + 100)
    seeds = sample_seeds(pair, 0.10, seed=seed + 200)
    return pair, seeds


def run_matcher(pair, seeds, memory_budget_mb, workers=1):
    """One csr-backend User-Matching run under the given budget."""
    matcher = UserMatching(
        MatcherConfig(
            threshold=2,
            iterations=1,
            backend="csr",
            workers=workers,
            memory_budget_mb=memory_budget_mb,
        )
    )
    return matcher.run(pair.g1, pair.g2, seeds)


def budget_curve(budgets=BUDGETS, scale=SCALE, seed=0):
    """Wall-clock + peak-alloc per budget; asserts link identity en route.

    Importable for micro smoke tests (``tests/benchmarks``) and the
    nightly job; returns ``{budget: (elapsed_s, peak_mb)}``.
    """
    import time

    pair, seeds = build_workload(scale=scale, seed=seed)
    curve = {}
    reference = None
    for budget in budgets:
        with MemoryTracker() as tracker:
            start = time.perf_counter()
            result = run_matcher(pair, seeds, budget)
            elapsed = time.perf_counter() - start
        curve[budget] = (elapsed, tracker.peak_mb)
        if reference is None:
            reference = result.links
        elif result.links != reference:
            raise AssertionError(
                f"memory_budget_mb={budget} changed the links"
            )
    return curve


def million_rung(scale=20, edge_factor=8, memory_budget_mb=512, seed=0):
    """The million-node rung via the Table-2 driver; returns its row.

    RMAT20 addresses 2^20 = 1,048,576 nodes; the row records nodes,
    edges, quality, wall-clock, and the process peak RSS under the
    stated budget.
    """
    result = table2_rmat.run_million(
        scale=scale,
        edge_factor=edge_factor,
        memory_budget_mb=memory_budget_mb,
        seed=seed,
    )
    return result.rows[0]


@pytest.fixture(scope="module")
def workload():
    return build_workload()


@pytest.mark.parametrize("budget", BUDGETS, ids=lambda b: f"budget={b}")
def test_bench_matcher_blocked(benchmark, workload, budget):
    """End-to-end matcher per budget; peak_mb riding in extra_info."""
    pair, seeds = workload
    index = GraphPairIndex(pair.g1, pair.g2)
    link_l, link_r = index.intern_links(seeds)
    plan = plan_witness_blocks(index, link_l, link_r, budget)
    with MemoryTracker() as tracker:
        result = run_matcher(pair, seeds, budget)
    benchmark.extra_info["memory_budget_mb"] = budget
    benchmark.extra_info["peak_mb"] = round(tracker.peak_mb, 2)
    benchmark.extra_info["first_round_blocks"] = plan.num_blocks
    benchmark.extra_info["nodes"] = pair.g1.num_nodes
    timed = benchmark.pedantic(
        run_matcher, args=(pair, seeds, budget), rounds=3, iterations=1
    )
    assert timed.links == result.links
    assert timed.num_new_links > 0


def test_bench_budget_curve_links_identical(benchmark):
    """The whole curve at micro scale — asserts link identity en route."""
    curve = benchmark.pedantic(
        budget_curve,
        kwargs=dict(budgets=(None, 1), scale=8),
        rounds=1,
        iterations=1,
    )
    assert set(curve) == {None, 1}


@pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_MILLION") != "1",
    reason="minutes + GiB: opt in with REPRO_BENCH_MILLION=1",
)
def test_bench_million_rung(benchmark):
    """RMAT20 under a stated budget; peak RSS recorded in the JSON."""
    row = benchmark.pedantic(
        million_rung,
        kwargs=dict(scale=20, edge_factor=8, memory_budget_mb=512),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(
        {key: row[key] for key in sorted(row) if row[key] is not None}
    )
    rss = peak_rss_mb()
    if rss is not None:
        benchmark.extra_info["process_peak_rss_mb"] = round(rss, 1)
    assert row["nodes"] > 1_000_000
    assert row["correct_pairs"] > 0
