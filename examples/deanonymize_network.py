"""De-anonymization scenario (the Narayanan–Shmatikov setting, §2).

A provider releases an "anonymized" copy of its social graph: node ids
replaced by random numbers, 25% of edges removed.  An attacker holds a
crawl of an overlapping public network and a handful of identified
accounts (the seeds — e.g. users who posted their profile link publicly).

The example shows (a) how much of the anonymized graph User-Matching
re-identifies from a tiny seed set, and (b) the comparison with the
Narayanan–Shmatikov propagation baseline on the same instance.

Run:  python examples/deanonymize_network.py
"""

from repro import (
    NarayananShmatikovMatcher,
    evaluate,
    independent_copies,
    preferential_attachment_graph,
    reconcile,
    top_degree_seeds,
)
from repro.graphs.ops import relabel
from repro.sampling.pair import GraphPair
from repro.utils.rng import ensure_rng
from repro.utils.timing import Timer


def main() -> None:
    print("building the provider's graph and the attacker's crawl...")
    true_graph = preferential_attachment_graph(n=4000, m=12, seed=10)
    pair = independent_copies(true_graph, s1=0.75, seed=11)

    # Anonymize the released copy: shuffle ids into a fresh space.
    rng = ensure_rng(12)
    permutation = list(range(pair.g2.num_nodes))
    rng.shuffle(permutation)
    mapping = {
        node: f"anon{permutation[i]}"
        for i, node in enumerate(pair.g2.nodes())
    }
    anonymized = relabel(pair.g2, mapping)
    identity = {v1: mapping[v2] for v1, v2 in pair.identity.items()}
    attack_pair = GraphPair(g1=pair.g1, g2=anonymized, identity=identity)

    # The attacker identified the 40 most prominent accounts by hand
    # (as in the real-world experiments of [23]).
    seeds = top_degree_seeds(attack_pair, 40)
    print(f"seeds: {len(seeds)} manually identified accounts")

    print("\nrunning User-Matching...")
    with Timer() as t_um:
        result = reconcile(
            attack_pair.g1, attack_pair.g2, seeds,
            threshold=2, iterations=2,
        )
    report = evaluate(result, attack_pair)
    print(
        f"  re-identified {report.good} accounts "
        f"({report.recall:.1%} of the graph) with "
        f"{report.error_rate:.2%} error in {t_um.elapsed:.1f}s"
    )

    print("\nrunning the Narayanan–Shmatikov propagation baseline...")
    with Timer() as t_ns:
        ns_result = NarayananShmatikovMatcher(max_sweeps=3).run(
            attack_pair.g1, attack_pair.g2, seeds
        )
    ns_report = evaluate(ns_result, attack_pair)
    print(
        f"  re-identified {ns_report.good} accounts "
        f"({ns_report.recall:.1%}) with "
        f"{ns_report.error_rate:.2%} error in {t_ns.elapsed:.1f}s"
    )

    print(
        "\nthe paper's point: the simple degree-bucketed witness count "
        "matches or beats\nthe expensive propagation scoring, at a "
        "fraction of the cost per round."
    )


if __name__ == "__main__":
    main()
