"""Cross-language article matching (Table 5's hardest scenario).

Two Wikipedia language editions are *not* copies of anything: they share
only an underlying conceptual universe.  Interlanguage links cover a
fraction of the shared articles and contain human errors.  Starting from
10% of those noisy links, User-Matching recovers a multiple of the input
links using pure graph structure — no titles, no text, no translation.

Run:  python examples/wikipedia_interlanguage.py
"""

from repro import MatcherConfig, UserMatching, evaluate
from repro.datasets.wikipedia import synthetic_wikipedia_pair
from repro.utils.rng import ensure_rng


def main() -> None:
    print("simulating two language editions over one concept universe...")
    wiki = synthetic_wikipedia_pair(n_concepts=8000, seed=30)
    pair = wiki.pair
    print(f"  'French'  edition: {pair.g1}")
    print(f"  'German'  edition: {pair.g2}")
    print(
        f"  truly shared concepts: {len(pair.identity)} — "
        f"interlanguage links cover {len(wiki.interlanguage_links)} "
        "of them (with human errors)"
    )

    rng = ensure_rng(31)
    seeds = {
        fr: de
        for fr, de in wiki.interlanguage_links.items()
        if rng.random() < 0.10
    }
    wrong_seeds = sum(
        1 for fr, de in seeds.items() if pair.identity.get(fr) != de
    )
    print(
        f"\nseeding from 10% of the links: {len(seeds)} seeds, "
        f"{wrong_seeds} of them wrong (human errors propagate!)"
    )

    for threshold in (3, 5):
        matcher = UserMatching(
            MatcherConfig(threshold=threshold, iterations=2)
        )
        result = matcher.run(pair.g1, pair.g2, seeds)
        report = evaluate(result, pair)
        growth = result.num_links / max(len(seeds), 1)
        print(
            f"\n  threshold={threshold}: {result.num_links} links "
            f"({growth:.1f}x the seeds), new-link error "
            f"{report.new_error_rate:.1%}"
        )
    print(
        "\nas in the paper: structure alone roughly triples the link "
        "set, at an error rate\nfar below the baseline's — and some "
        "'errors' are the input links' own mistakes."
    )


if __name__ == "__main__":
    main()
