"""Quickstart: reconcile two partial copies of one social network.

This is the paper's core scenario end-to-end in ~30 lines:

1. generate a "true" social network (preferential attachment);
2. derive two partial observations of it (each edge survives in each copy
   with probability s = 0.5 — think Facebook vs Twitter views of the same
   friendships);
3. link a small fraction of users across the copies (the seed links);
4. run User-Matching and measure precision/recall against ground truth.

Run:  python examples/quickstart.py
"""

from repro import (
    evaluate,
    independent_copies,
    preferential_attachment_graph,
    reconcile,
    sample_seeds,
)


def main() -> None:
    print("1. generating the true network (PA, n=5000, m=20)...")
    graph = preferential_attachment_graph(n=5000, m=20, seed=1)
    print(f"   {graph}")

    print("2. sampling two partial copies (each edge kept w.p. 0.5)...")
    pair = independent_copies(graph, s1=0.5, seed=2)
    print(f"   g1: {pair.g1}")
    print(f"   g2: {pair.g2}")

    print("3. linking 5% of users across the copies...")
    seeds = sample_seeds(pair, link_probability=0.05, seed=3)
    print(f"   {len(seeds)} seed links")

    print("4. running User-Matching (threshold=2, k=2)...")
    result = reconcile(pair.g1, pair.g2, seeds, threshold=2, iterations=2)
    report = evaluate(result, pair)

    print()
    print(f"   links found        : {result.num_links}"
          f" ({result.num_new_links} beyond the seeds)")
    print(f"   precision          : {report.precision:.2%}")
    print(f"   recall             : {report.recall:.2%}"
          f" (of {report.identifiable} identifiable users)")
    print(f"   new-link error rate: {report.new_error_rate:.2%}")
    print()
    print("   per-round history (first 8 rounds):")
    for phase in result.phases[:8]:
        print(
            f"     iter {phase.iteration}, degree >= "
            f"{phase.min_degree:>4}: +{phase.links_added} links"
        )


if __name__ == "__main__":
    main()
