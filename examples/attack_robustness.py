"""Robustness against a sybil attack (§5).

An attacker clones every user's profile and gets each of the victim's
friends to accept the fake with probability 1/2 — the strong attack model
the paper designs specifically against its own algorithm.  The question a
production system must answer: do real users get linked to fakes?

Run:  python examples/attack_robustness.py
"""

from repro import (
    CommonNeighborsMatcher,
    MatcherConfig,
    UserMatching,
    attacked_copies,
    sample_seeds,
)
from repro.datasets.synthetic import facebook_like
from repro.experiments.attack import real_node_accounting
from repro.sampling.pair import GraphPair


def main() -> None:
    print("building the social network and mounting the attack...")
    graph = facebook_like(4000, seed=40)
    pair = attacked_copies(graph, s=0.75, attach_prob=0.5, seed=41)
    print(
        f"  each copy: {pair.g1.num_nodes} profiles "
        f"({graph.num_nodes} real + {graph.num_nodes} sybils)"
    )

    real_identity = {
        v1: v2
        for v1, v2 in pair.identity.items()
        if not isinstance(v1, tuple)
    }
    real_only = GraphPair(g1=pair.g1, g2=pair.g2, identity=real_identity)
    seeds = sample_seeds(real_only, 0.10, seed=42)
    print(f"  {len(seeds)} real users linked their own accounts")

    print("\nUser-Matching under attack:")
    result = UserMatching(
        MatcherConfig(threshold=2, iterations=2)
    ).run(pair.g1, pair.g2, seeds)
    counts = real_node_accounting(result, pair)
    print(
        f"  real users correctly linked : {counts['good']} "
        f"/ {graph.num_nodes}"
    )
    print(f"  wrong links (attack wins)   : {counts['bad']}")
    print(
        f"  sybil-to-own-twin links     : {counts['sybil_twins']} "
        "(harmless: same fake on both sides)"
    )

    print("\nsimple common-neighbors baseline under the same attack:")
    baseline = CommonNeighborsMatcher(threshold=1, iterations=2).run(
        pair.g1, pair.g2, seeds
    )
    base_counts = real_node_accounting(baseline, pair)
    print(
        f"  real users correctly linked : {base_counts['good']}"
        f"  (wrong: {base_counts['bad']})"
    )

    print(
        "\nwhy the attack fails: a sybil copies its victim's *local* "
        "profile, but witnesses\nare already-matched neighbors — to win, "
        "the attacker would need many friends in\ncommon with the victim "
        "across BOTH networks, which the paper argues is the\nexpensive "
        "part to fake."
    )


if __name__ == "__main__":
    main()
