"""Matcher gallery: one workload, every registered matcher, one table.

The registry resolves matchers by name, so comparing the paper's
User-Matching against every baseline — plus a custom-composed Reconciler
pipeline — is a loop, not an import list:

1. build one reconciliation workload (PA graph, two 50% copies, seeds);
2. run every matcher the registry knows about on it;
3. run a Reconciler with a stable-matching selector and a degree-ratio
   validator, watching per-stage progress and timings;
4. print the head-to-head table.

Run:  python examples/matcher_gallery.py
"""

from repro import (
    Reconciler,
    available_matchers,
    compare_matchers,
    degree_ratio_validator,
    format_table,
    independent_copies,
    preferential_attachment_graph,
    sample_seeds,
)


def main() -> None:
    print("1. building the workload (PA n=2000, s=0.5, 10% seeds)...")
    graph = preferential_attachment_graph(n=2000, m=10, seed=1)
    pair = independent_copies(graph, s1=0.5, seed=2)
    seeds = sample_seeds(pair, link_probability=0.1, seed=3)
    print(f"   g1={pair.g1}, g2={pair.g2}, {len(seeds)} seed links")

    print("2. running every registered matcher on it...")
    names = [
        name
        for name in available_matchers()
        # the MR formulation is link-identical to user-matching; skip the
        # slow duplicate in this demo
        if name != "mapreduce-user-matching"
    ]
    trials = compare_matchers(pair, seeds, names)

    print("3. composing a custom pipeline (stable selector + validator)...")
    pipeline = Reconciler(
        threshold=2,
        rounds=4,
        selector="gale-shapley",
        validators=[degree_ratio_validator(4.0)],
    )
    trials += compare_matchers(
        pair, seeds, [pipeline], params={"note": "custom"}
    )
    result = trials[-1].result
    stage_cost = {}
    for timing in result.timings:
        stage_cost[timing.stage] = (
            stage_cost.get(timing.stage, 0.0) + timing.elapsed
        )
    print("   pipeline stage costs:", {
        stage: f"{cost*1000:.1f}ms" for stage, cost in stage_cost.items()
    })

    print()
    rows = []
    for trial in trials:
        rows.append(
            [
                trial.params["matcher"],
                trial.result.num_new_links,
                f"{trial.report.precision:.2%}",
                f"{trial.report.recall:.2%}",
                f"{trial.elapsed:.3f}s",
            ]
        )
    print(
        format_table(
            ["matcher", "new links", "precision", "recall", "time"],
            rows,
            title="every matcher, one workload (matched head-to-head)",
        )
    )


if __name__ == "__main__":
    main()
