"""Different-scope networks: personal vs professional (Table 4 scenario).

The paper's motivating example: your Facebook graph holds your personal
communities, your LinkedIn graph your professional ones.  Whole circles of
contacts exist on one service and not the other — a *correlated* deletion
process no independent-edge model captures.

We model the truth as an Affiliation Network (users x communities), build
the two services by dropping whole communities per copy, and reconcile.

Run:  python examples/cross_network_scopes.py
"""

from repro import (
    MatcherConfig,
    UserMatching,
    correlated_community_copies,
    evaluate,
    sample_seeds,
)
from repro.generators.affiliation import affiliation_graph


def main() -> None:
    print("growing the affiliation network (users x communities)...")
    network = affiliation_graph(
        n_users=1500,
        n_interests=1500,
        memberships_per_user=10,
        uniform_mix=0.9,
        founding_prob=0.4,
        copy_factor=0.3,
        seed=20,
    )
    fold = network.graph
    print(
        f"  {network.bipartite.num_users} users, "
        f"{network.bipartite.num_affiliations} communities, "
        f"folded graph has {fold.num_edges} edges"
    )

    print(
        "\nderiving the two services (each community survives on each "
        "service w.p. 0.75)..."
    )
    pair = correlated_community_copies(network, keep_prob=0.75, seed=21)
    print(f"  service A: {pair.g1.num_edges} edges")
    print(f"  service B: {pair.g2.num_edges} edges")

    seeds = sample_seeds(pair, 0.10, seed=22)
    print(f"  {len(seeds)} users linked their accounts themselves")

    print("\nreconciling (threshold=3, k=3)...")
    matcher = UserMatching(MatcherConfig(threshold=3, iterations=3))
    result = matcher.run(pair.g1, pair.g2, seeds)
    report = evaluate(result, pair)
    print(
        f"  matched {report.good} users correctly, "
        f"{report.bad} wrongly "
        f"(recall {report.recall:.1%}, precision {report.precision:.2%})"
    )
    print(
        "\neven though each user's two neighborhoods share only the "
        "communities kept on\nboth services, the witness counts over the "
        "shared communities carry the day —\nthe paper's Table 4 reports "
        "the same outcome with zero errors at 60K users."
    )


if __name__ == "__main__":
    main()
