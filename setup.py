"""Legacy setup shim.

The project is configured in pyproject.toml; this file exists only so that
``pip install -e .`` works in offline environments lacking the ``wheel``
package (pip falls back to ``setup.py develop``).
"""

from setuptools import setup

setup()
