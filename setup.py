"""Package configuration.

Kept as a plain ``setup.py`` (not pyproject.toml) so that
``pip install -e .`` works in offline environments lacking the ``wheel``
package (pip falls back to ``setup.py develop``).

numpy is the only hard runtime dependency — the array substrate of
``graphs/csr.py`` and ``core/kernels.py``.  scipy is an optional
accelerator for the sparse-matmul witness join (``[accel]`` extra); the
package falls back to a pure-numpy kernel without it.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.2.0",
    description=(
        "Reproduction of Korula & Lattanzi, 'An efficient "
        "reconciliation algorithm for social networks' (PVLDB 2014)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    # Matches the CI test matrix (3.11/3.12) — don't advertise untested
    # floors.
    python_requires=">=3.11",
    install_requires=[
        "numpy>=1.22",
    ],
    extras_require={
        "accel": ["scipy>=1.8"],
        "test": [
            "pytest",
            "pytest-benchmark",
            "hypothesis",
            "networkx",
        ],
    },
    entry_points={
        "console_scripts": ["repro = repro.cli:main"],
    },
)
