"""RPR006 fixture: a config class with an un-threaded knob.

Installed as ``src/repro/core/config.py`` of a synthetic mini-project
by ``test_knob_threading.py``; the companion CLI/docs there cover
``threshold`` but not ``shiny_new_knob``, which therefore fails all
three chores (validator, CLI flag, docs entry).
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class MatcherConfig:
    threshold: int = 2
    shiny_new_knob: float = 0.5  # expect: RPR006,RPR006,RPR006

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ValueError("threshold must be >= 1")
