"""RPR005 fixture: explicit dtypes and non-index arrays (clean)."""

import numpy as np


def build_indptr(counts: list) -> np.ndarray:
    indptr = np.zeros(len(counts) + 1, dtype=np.int64)
    return indptr


def gather_ids(n: int) -> np.ndarray:
    node_ids = np.arange(n, dtype=np.uint32)
    return node_ids


def weights(values: list) -> np.ndarray:
    # Not index-like: the default float dtype is deterministic.
    scores = np.asarray(values)
    return scores
