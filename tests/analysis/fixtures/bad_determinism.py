"""RPR001 fixture: every ambient-entropy read class the rule rejects.

Linted under the virtual path ``src/repro/core/bad_determinism.py``;
trailing ``expect`` markers declare the exact finding lines.
"""

import os
import random
import time
import uuid

import numpy as np


def jitter() -> float:
    return random.random()  # expect: RPR001


def shuffled(items: list) -> list:
    random.shuffle(items)  # expect: RPR001
    return items


def legacy_draw() -> float:
    return float(np.random.rand())  # expect: RPR001


def legacy_state() -> None:
    np.random.seed(0)  # expect: RPR001


def stamp() -> float:
    return time.time()  # expect: RPR001


def token() -> bytes:
    return os.urandom(8)  # expect: RPR001


def ident() -> str:
    return str(uuid.uuid4())  # expect: RPR001
