"""RPR004 fixture: shared-memory segments with no guaranteed release.

Linted under ``src/repro/core/bad_shm_lifecycle.py`` (the rule is
global, but the fixture keeps the core-path convention).
"""

from multiprocessing.shared_memory import SharedMemory


def leak_created(nbytes: int) -> str:
    shm = SharedMemory(create=True, size=nbytes)  # expect: RPR004
    shm.buf[0] = 0
    return shm.name


def leak_attached(name: str) -> bytes:
    shm = SharedMemory(name=name)  # expect: RPR004
    data = bytes(shm.buf[:4])
    shm.close()
    return data


def close_without_unlink(nbytes: int) -> int:
    shm = SharedMemory(create=True, size=nbytes)  # expect: RPR004
    try:
        return shm.buf[0]
    finally:
        shm.close()
