"""RPR007 fixture: shared-library loads that bypass the fallback helper.

Linted under ``src/repro/core/fixture_native_boundary.py`` — the rule
is scoped to the execution core, where a loader failure must degrade,
never crash.
"""

import ctypes
from ctypes import CDLL

import cffi  # expect: RPR007


def bare_load(path: str) -> ctypes.CDLL:
    return CDLL(path)  # expect: RPR007


def bare_qualified_load(path: str) -> ctypes.CDLL:
    return ctypes.CDLL(path)  # expect: RPR007


def bare_loadlibrary(path: str) -> ctypes.CDLL:
    return ctypes.cdll.LoadLibrary(path)  # expect: RPR007


def handled_but_wrong_name(path: str) -> "ctypes.CDLL | None":
    # Correct handler, wrong function: only the sanctioned
    # _load_shared_library boundary may contain the raw load.
    try:
        return ctypes.CDLL(path)  # expect: RPR007
    except OSError:
        return None


def _load_shared_library(path: str) -> "ctypes.CDLL | None":
    # Right name, but the load is not dominated by an OSError handler:
    # a missing or corrupt shared object still crashes the caller.
    try:
        handle = ctypes.CDLL(path)  # expect: RPR007
    except ValueError:
        return None
    return handle
