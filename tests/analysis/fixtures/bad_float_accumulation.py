"""RPR003 fixture: bare sum() over non-integer data.

Linted under ``src/repro/core/bad_float_accumulation.py``.
"""


def mean(values: list) -> float:
    return sum(values) / len(values)  # expect: RPR003


def sum_of_squares(values: list) -> float:
    return sum(x * x for x in values)  # expect: RPR003


def weighted(pairs: list) -> float:
    total = sum(w * s for w, s in pairs)  # expect: RPR003
    return total
