"""RPR002 fixture: order-free and sorted-wrapped set consumption (clean)."""


def sorted_loop(edges: list) -> list:
    seen = set(edges)
    out = []
    for item in sorted(seen):
        out.append(item)
    return out


def order_free(edges: list) -> int:
    pending = {e for e in edges}
    if 0 in pending:
        return len(pending)
    return max(sorted(x for x in pending), default=0)


def membership_only(edges: list, probe: int) -> bool:
    frontier = set(edges)
    return probe in frontier
