"""RPR006 fixture: every knob validated, plumbed, and documented."""

from dataclasses import dataclass


@dataclass(frozen=True)
class MatcherConfig:
    threshold: int = 2
    backend: str = "dict"

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ValueError("threshold must be >= 1")
        if self.backend not in ("dict", "csr"):
            raise ValueError("unknown backend")
