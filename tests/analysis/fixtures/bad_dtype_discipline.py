"""RPR005 fixture: index-like arrays with platform-dependent dtypes.

Linted under ``src/repro/graphs/bad_dtype_discipline.py``.
"""

import numpy as np


def build_indptr(counts: list) -> np.ndarray:
    indptr = np.zeros(len(counts) + 1)  # expect: RPR005
    return indptr


def gather_ids(n: int) -> np.ndarray:
    node_ids = np.arange(n)  # expect: RPR005
    return node_ids


class Adjacency:
    def __init__(self, values: list) -> None:
        self.indices = np.asarray(values)  # expect: RPR005
