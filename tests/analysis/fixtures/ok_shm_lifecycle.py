"""RPR004 fixture: every accepted lifecycle pattern (clean)."""

from multiprocessing.shared_memory import SharedMemory


class SegmentOwner:
    """Owner whose close() is responsible for adopted segments."""

    def __init__(self) -> None:
        self._segments: list[SharedMemory] = []

    def adopt(self, nbytes: int) -> SharedMemory:
        # Ownership handoff: appended in the very next statement.
        shm = SharedMemory(create=True, size=nbytes)
        self._segments.append(shm)
        return shm

    def close(self) -> None:
        for shm in self._segments:
            shm.close()
            shm.unlink()


def adopt_direct(owner: SegmentOwner, name: str) -> None:
    # Direct call-argument handoff.
    owner._segments.append(SharedMemory(name=name))


def copy_out(name: str) -> bytes:
    # Attachment dominated by try/finally close().
    shm = None
    try:
        shm = SharedMemory(name=name)
        return bytes(shm.buf[:8])
    finally:
        if shm is not None:
            shm.close()


def roundtrip(nbytes: int) -> int:
    # Creation dominated by try/finally close() + unlink().
    shm = None
    try:
        shm = SharedMemory(create=True, size=nbytes)
        shm.buf[0] = 7
        return shm.buf[0]
    finally:
        if shm is not None:
            shm.close()
            shm.unlink()


def cleanup_in_handler(nbytes: int) -> str:
    # ``except: cleanup; raise`` is the other spelling of the guarantee.
    try:
        shm = SharedMemory(create=True, size=nbytes)
        shm.buf[0] = 1
        return shm.name
    except BaseException:
        shm.close()
        shm.unlink()
        raise
