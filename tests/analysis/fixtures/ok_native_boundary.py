"""RPR007 fixture: the sanctioned load boundary (clean).

The only raw ``CDLL`` call sits inside ``_load_shared_library`` with
the load dominated by an ``OSError`` handler mapping failure to
``None`` — the spelling :mod:`repro.core.native` uses.
"""

import ctypes
from pathlib import Path


def _load_shared_library(lib_path: Path) -> "ctypes.CDLL | None":
    try:
        return ctypes.CDLL(str(lib_path))
    except OSError:
        return None


def load_with_fallback(lib_path: Path) -> "ctypes.CDLL | None":
    # Callers go through the helper; no loader call of their own.
    handle = _load_shared_library(lib_path)
    if handle is None:
        return None
    return handle


def unrelated_ctypes_use(n: int) -> ctypes.c_int64:
    # Non-loader ctypes API is fine anywhere.
    return ctypes.c_int64(n)
