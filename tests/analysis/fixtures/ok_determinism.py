"""RPR001 fixture: the sanctioned seeded/monotonic spellings (clean)."""

import random
import time

import numpy as np


def seeded_jitter(seed: int) -> float:
    rng = random.Random(seed)
    return rng.random()


def seeded_draw(seed: int) -> float:
    rng = np.random.default_rng(seed)
    return float(rng.random())


def elapsed() -> float:
    # perf_counter/monotonic feed diagnostics, never results.
    began = time.perf_counter()
    return time.perf_counter() - began
