"""RPR002 fixture: raw set iteration in every shape the rule catches.

Linted under ``src/repro/core/bad_ordered_iteration.py``.
"""


def for_loop(edges: list) -> list:
    seen = set(edges)
    out = []
    for item in seen:  # expect: RPR002
        out.append(item)
    return out


def comprehension(edges: list) -> list:
    pending = {e for e in edges}
    return [x for x in pending]  # expect: RPR002


def materialized(edges: list) -> list:
    frontier = set(edges) | {0}
    return list(frontier)  # expect: RPR002
