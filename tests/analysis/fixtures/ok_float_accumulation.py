"""RPR003 fixture: the sanctioned reducers (clean)."""

import math


def mean(values: list) -> float:
    return math.fsum(values) / len(values)


def count_edges(parts: list) -> int:
    return int(sum(part[3] for part in parts))


def count_ones(values: list) -> int:
    return sum(1 for _ in values)


def total_length(blocks: list) -> int:
    return sum(len(block) for block in blocks)


def count_hits(values: list, floor: int) -> int:
    return sum(v >= floor for v in values)
