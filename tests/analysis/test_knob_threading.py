"""RPR006 tests against synthetic mini-projects.

The rule reads three files relative to a project root; each test
builds a tmp tree with exactly one chore missing and asserts the one
expected finding (anchored at the field's line in config.py).
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.analysis.engine import run_lint
from repro.analysis.rules.knob_threading import (
    CLI_ALIASES,
    CLI_EXEMPT,
    KnobThreadingRule,
)

FIXTURES = Path(__file__).parent / "fixtures"

CLI_WITH_THRESHOLD = (
    "import argparse\n"
    "def build_parser():\n"
    "    p = argparse.ArgumentParser()\n"
    '    p.add_argument("--threshold", type=int)\n'
    '    p.add_argument("--backend")\n'
    "    return p\n"
)

DOCS_BOTH = (
    "## MatcherConfig\n\n"
    "- threshold: score floor\n"
    "- backend: dict or csr\n"
)


def make_project(
    tmp_path: Path,
    config_text: str,
    cli_text: str = CLI_WITH_THRESHOLD,
    docs_text: str = DOCS_BOTH,
) -> Path:
    (tmp_path / "setup.py").write_text("")
    config = tmp_path / "src" / "repro" / "core" / "config.py"
    config.parent.mkdir(parents=True)
    config.write_text(config_text)
    (tmp_path / "src" / "repro" / "cli.py").write_text(cli_text)
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "API.md").write_text(docs_text)
    return tmp_path


def lint_project(root: Path):
    report = run_lint(
        [root / "src"],
        project_root=root,
        rules=[KnobThreadingRule()],
    )
    return report.findings


def field_line(config_text: str, field: str) -> int:
    for lineno, line in enumerate(config_text.splitlines(), start=1):
        if re.match(rf"\s*{field}\s*:", line):
            return lineno
    raise AssertionError(f"{field} not found")


class TestFixturePair:
    def test_bad_fixture_fires_three_chores(self, tmp_path):
        config_text = (FIXTURES / "bad_knob_config.py").read_text()
        root = make_project(tmp_path, config_text)
        findings = lint_project(root)
        line = field_line(config_text, "shiny_new_knob")
        assert [(f.rule_id, f.line) for f in findings] == [
            ("RPR006", line)
        ] * 3
        messages = "\n".join(f.message for f in findings)
        assert "validate_shiny_new_knob" in messages
        assert "--shiny-new-knob" in messages
        assert "docs/API.md" in messages

    def test_ok_fixture_is_clean(self, tmp_path):
        config_text = (FIXTURES / "ok_knob_config.py").read_text()
        root = make_project(tmp_path, config_text)
        assert lint_project(root) == []


class TestIndividualChores:
    CONFIG = (
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class MatcherConfig:\n"
        "    threshold: int = 2\n"
        "    def __post_init__(self):\n"
        "        if self.threshold < 1:\n"
        "            raise ValueError('bad')\n"
    )

    def test_fully_threaded_field_is_clean(self, tmp_path):
        root = make_project(tmp_path, self.CONFIG)
        assert lint_project(root) == []

    def test_missing_validator(self, tmp_path):
        config = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class MatcherConfig:\n"
            "    threshold: int = 2\n"
        )
        root = make_project(tmp_path, config)
        findings = lint_project(root)
        assert len(findings) == 1
        assert "validate_threshold" in findings[0].message
        assert findings[0].line == 4

    def test_module_level_validator_accepted(self, tmp_path):
        config = (
            "from dataclasses import dataclass\n"
            "def validate_threshold(value):\n"
            "    return value\n"
            "@dataclass\n"
            "class MatcherConfig:\n"
            "    threshold: int = 2\n"
        )
        root = make_project(tmp_path, config)
        assert lint_project(root) == []

    def test_missing_cli_flag(self, tmp_path):
        root = make_project(
            tmp_path,
            self.CONFIG,
            cli_text="import argparse\n",
        )
        findings = lint_project(root)
        assert len(findings) == 1
        assert "--threshold" in findings[0].message

    def test_missing_docs_entry(self, tmp_path):
        root = make_project(
            tmp_path, self.CONFIG, docs_text="## MatcherConfig\n"
        )
        findings = lint_project(root)
        assert len(findings) == 1
        assert "docs/API.md" in findings[0].message

    def test_cli_alias_satisfies_plumbing(self, tmp_path):
        config = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class MatcherConfig:\n"
            "    warm_start: bool = False\n"
            "    def __post_init__(self):\n"
            "        if not isinstance(self.warm_start, bool):\n"
            "            raise ValueError('bad')\n"
        )
        cli = (
            "import argparse\n"
            "def build_parser():\n"
            "    p = argparse.ArgumentParser()\n"
            '    p.add_argument("--resume", action="store_true")\n'
            "    return p\n"
        )
        root = make_project(
            tmp_path, config, cli_text=cli, docs_text="warm_start\n"
        )
        assert lint_project(root) == []

    def test_exempt_field_skips_cli_chore_only(self, tmp_path):
        config = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class MatcherConfig:\n"
            "    tie_policy: str = 'skip'\n"
            "    def __post_init__(self):\n"
            "        if not self.tie_policy:\n"
            "            raise ValueError('bad')\n"
        )
        root = make_project(
            tmp_path,
            config,
            cli_text="import argparse\n",
            docs_text="tie_policy\n",
        )
        assert lint_project(root) == []

    def test_missing_config_module_is_silent(self, tmp_path):
        (tmp_path / "setup.py").write_text("")
        src = tmp_path / "src" / "repro" / "core"
        src.mkdir(parents=True)
        (src / "other.py").write_text("x = 1\n")
        assert lint_project(tmp_path) == []


class TestRealProjectContract:
    """The escape hatches must describe the real tree truthfully."""

    REPO = Path(__file__).resolve().parents[2]

    def test_aliases_exist_in_real_cli(self):
        cli_text = (self.REPO / "src" / "repro" / "cli.py").read_text()
        for flag in CLI_ALIASES.values():
            assert f'"{flag}"' in cli_text, flag

    def test_exempt_fields_are_real_config_fields(self):
        config_text = (
            self.REPO / "src" / "repro" / "core" / "config.py"
        ).read_text()
        for name in CLI_EXEMPT:
            assert re.search(rf"\b{name}\b", config_text), name

    def test_real_tree_has_no_rpr006_findings(self):
        report = run_lint(
            [self.REPO / "src"],
            project_root=self.REPO,
            rules=[KnobThreadingRule()],
        )
        assert report.findings == []
