"""Framework-level tests: registry, suppressions, engine, CLI."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.cli import main as lint_main
from repro.analysis.engine import (
    collect_files,
    find_project_root,
    run_lint,
)
from repro.analysis.framework import (
    Finding,
    Severity,
    SourceFile,
    all_rules,
    get_rule,
    module_parts,
    rule_ids,
)

REPO = Path(__file__).resolve().parents[2]

BAD_CORE = ("import time\n" "def stamp():\n" "    return time.time()\n")


class TestRegistry:
    def test_all_seven_rules_registered(self):
        assert rule_ids() == (
            "RPR001",
            "RPR002",
            "RPR003",
            "RPR004",
            "RPR005",
            "RPR006",
            "RPR007",
        )

    def test_get_rule_roundtrip(self):
        for rule_id, cls in all_rules().items():
            assert get_rule(rule_id) is cls
            rule = cls()
            assert rule.id == rule_id
            assert rule.title
            assert rule.hint

    def test_unknown_rule_raises(self):
        with pytest.raises(KeyError):
            get_rule("RPR999")


class TestModuleParts:
    def test_src_prefix_stripped(self):
        assert module_parts("src/repro/core/kernels.py") == (
            "repro",
            "core",
            "kernels.py",
        )

    def test_non_package_path_never_matches_repro_scope(self):
        parts = module_parts("benchmarks/bench_matcher.py")
        assert parts[0] != "repro"


class TestSuppressions:
    def test_targeted_suppression_swallows_finding(self, tmp_path):
        path = tmp_path / "src" / "repro" / "core" / "x.py"
        path.parent.mkdir(parents=True)
        path.write_text(
            "import time\n"
            "def stamp():\n"
            "    return time.time()"
            "  # repro-lint: ignore[RPR001] wall time is the payload\n"
        )
        report = run_lint([path], project_root=tmp_path)
        assert report.findings == []
        assert report.suppressed == 1

    def test_suppression_for_other_rule_does_not_apply(self, tmp_path):
        path = tmp_path / "src" / "repro" / "core" / "x.py"
        path.parent.mkdir(parents=True)
        path.write_text(
            "import time\n"
            "def stamp():\n"
            "    return time.time()  # repro-lint: ignore[RPR005]\n"
        )
        report = run_lint([path], project_root=tmp_path)
        assert [f.rule_id for f in report.findings] == ["RPR001"]
        assert report.suppressed == 0

    def test_bare_suppression_covers_every_rule(self):
        src = SourceFile.from_source(
            "x = 1  # repro-lint: ignore\n", "src/repro/core/x.py"
        )
        assert src.is_suppressed("RPR001", 1)
        assert src.is_suppressed("RPR005", 1)
        assert not src.is_suppressed("RPR001", 2)


class TestEngine:
    def test_select_restricts_rules(self, tmp_path):
        path = tmp_path / "src" / "repro" / "core" / "x.py"
        path.parent.mkdir(parents=True)
        path.write_text(BAD_CORE)
        report = run_lint([path], select={"RPR005"}, project_root=tmp_path)
        assert report.rules_run == ("RPR005",)
        assert report.findings == []
        full = run_lint([path], project_root=tmp_path)
        assert [f.rule_id for f in full.findings] == ["RPR001"]

    def test_parse_error_reported_as_finding(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def broken(:\n")
        report = run_lint([path], project_root=tmp_path)
        assert report.parse_errors == 1
        assert report.exit_code == 1
        assert report.findings[0].rule_id == "PARSE"

    def test_findings_sorted_by_location(self, tmp_path):
        path = tmp_path / "src" / "repro" / "core" / "x.py"
        path.parent.mkdir(parents=True)
        path.write_text(
            "import time\n"
            "import numpy as np\n"
            "def f(n):\n"
            "    t = time.time()\n"
            "    indptr = np.zeros(n)\n"
            "    return t, indptr\n"
        )
        report = run_lint([path], project_root=tmp_path)
        assert [
            (f.rule_id, f.line) for f in report.findings
        ] == [("RPR001", 4), ("RPR005", 5)]

    def test_collect_files_skips_cache_dirs(self, tmp_path):
        keep = tmp_path / "pkg" / "mod.py"
        keep.parent.mkdir()
        keep.write_text("x = 1\n")
        skip = tmp_path / "pkg" / "__pycache__" / "mod.py"
        skip.parent.mkdir()
        skip.write_text("x = 1\n")
        assert collect_files([tmp_path]) == [keep]

    def test_find_project_root_walks_to_marker(self, tmp_path):
        (tmp_path / "setup.py").write_text("")
        nested = tmp_path / "src" / "pkg"
        nested.mkdir(parents=True)
        assert find_project_root(nested) == tmp_path

    def test_finding_render_format(self):
        finding = Finding(
            path="src/x.py",
            line=3,
            col=4,
            rule_id="RPR001",
            severity=Severity.ERROR,
            message="boom",
            hint="fix it",
        )
        assert finding.render() == (
            "src/x.py:3:4: RPR001 error: boom (hint: fix it)"
        )


class TestCli:
    def _bad_tree(self, tmp_path) -> Path:
        path = tmp_path / "src" / "repro" / "core" / "x.py"
        path.parent.mkdir(parents=True)
        path.write_text(BAD_CORE)
        return path

    def test_clean_run_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "src" / "repro" / "core" / "x.py"
        path.parent.mkdir(parents=True)
        path.write_text("x = 1\n")
        assert lint_main([str(tmp_path / "src")]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one_with_rendered_lines(self, tmp_path, capsys):
        path = self._bad_tree(tmp_path)
        assert lint_main([str(path)]) == 1
        out = capsys.readouterr().out
        assert "RPR001" in out
        assert ":3:" in out

    def test_json_format(self, tmp_path, capsys):
        path = self._bad_tree(tmp_path)
        assert lint_main([str(path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["files_checked"] == 1
        assert payload["findings"][0]["rule"] == "RPR001"
        assert payload["findings"][0]["line"] == 3

    def test_unknown_rule_id_is_usage_error(self, tmp_path, capsys):
        path = self._bad_tree(tmp_path)
        assert lint_main([str(path), "--select", "RPR999"]) == 2
        assert "unknown rule ids" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        missing = tmp_path / "nope"
        assert lint_main([str(missing)]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in rule_ids():
            assert rule_id in out

    def test_select_filters_findings(self, tmp_path):
        path = self._bad_tree(tmp_path)
        assert lint_main([str(path), "--select", "RPR005"]) == 0
