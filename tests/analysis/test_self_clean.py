"""The acceptance gate: the shipped tree passes its own linter."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.engine import run_lint
from repro.analysis.framework import rule_ids

REPO = Path(__file__).resolve().parents[2]


def test_src_tree_is_lint_clean():
    report = run_lint([REPO / "src"], project_root=REPO)
    rendered = "\n".join(f.render() for f in report.findings)
    assert report.findings == [], f"repro lint src/ found:\n{rendered}"
    assert report.exit_code == 0
    # All six rules actually ran — a registration regression would
    # otherwise make this test pass vacuously.
    assert report.rules_run == rule_ids()
    assert report.files_checked > 100


def test_src_tree_needs_no_suppressions():
    report = run_lint([REPO / "src"], project_root=REPO)
    assert report.suppressed == 0
