"""Per-rule fixture tests: each bad fixture fires at its marked lines.

Fixtures under ``fixtures/`` carry ``# expect: RPR00x`` markers naming
the rule id(s) expected on that exact line; the assertions here compare
the *full* finding set against the full marker set, so a rule that
over- or under-reports fails loudly, with line numbers.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.analysis.framework import SourceFile
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.dtype_discipline import DtypeDisciplineRule
from repro.analysis.rules.float_accumulation import FloatAccumulationRule
from repro.analysis.rules.native_boundary import NativeBoundaryRule
from repro.analysis.rules.ordered_iteration import OrderedIterationRule
from repro.analysis.rules.shm_lifecycle import ShmLifecycleRule

FIXTURES = Path(__file__).parent / "fixtures"

_EXPECT_RE = re.compile(r"#\s*expect:\s*(?P<ids>[A-Z0-9, ]+)")


def fixture_text(name: str) -> str:
    return (FIXTURES / name).read_text(encoding="utf-8")


def expected_findings(name: str) -> list[tuple[str, int]]:
    """``(rule_id, line)`` pairs declared by ``# expect:`` markers."""
    out: list[tuple[str, int]] = []
    for lineno, line in enumerate(fixture_text(name).splitlines(), start=1):
        match = _EXPECT_RE.search(line)
        if match is None:
            continue
        for rule_id in match.group("ids").split(","):
            out.append((rule_id.strip(), lineno))
    assert out, f"fixture {name} declares no expectations"
    return sorted(out)


def run_rule(rule, name: str, virtual_path: str) -> list[tuple[str, int]]:
    src = SourceFile.from_source(fixture_text(name), virtual_path)
    assert rule.applies_to(virtual_path), virtual_path
    return sorted((f.rule_id, f.line) for f in rule.check(src))


FILE_RULE_CASES = [
    pytest.param(
        DeterminismRule(),
        "determinism",
        "src/repro/core/fixture_determinism.py",
        id="RPR001",
    ),
    pytest.param(
        OrderedIterationRule(),
        "ordered_iteration",
        "src/repro/core/fixture_ordered_iteration.py",
        id="RPR002",
    ),
    pytest.param(
        FloatAccumulationRule(),
        "float_accumulation",
        "src/repro/core/fixture_float_accumulation.py",
        id="RPR003",
    ),
    pytest.param(
        ShmLifecycleRule(),
        "shm_lifecycle",
        "src/repro/core/fixture_shm_lifecycle.py",
        id="RPR004",
    ),
    pytest.param(
        DtypeDisciplineRule(),
        "dtype_discipline",
        "src/repro/graphs/fixture_dtype_discipline.py",
        id="RPR005",
    ),
    pytest.param(
        NativeBoundaryRule(),
        "native_boundary",
        "src/repro/core/fixture_native_boundary.py",
        id="RPR007",
    ),
]


@pytest.mark.parametrize("rule,stem,virtual_path", FILE_RULE_CASES)
class TestFixturePairs:
    def test_bad_fixture_fires_at_marked_lines(self, rule, stem, virtual_path):
        got = run_rule(rule, f"bad_{stem}.py", virtual_path)
        assert got == expected_findings(f"bad_{stem}.py")

    def test_ok_fixture_is_clean(self, rule, stem, virtual_path):
        assert run_rule(rule, f"ok_{stem}.py", virtual_path) == []

    def test_findings_carry_hint_and_severity(self, rule, stem, virtual_path):
        src = SourceFile.from_source(
            fixture_text(f"bad_{stem}.py"), virtual_path
        )
        for finding in rule.check(src):
            assert finding.rule_id == rule.id
            assert finding.hint, "every finding needs autofix guidance"
            assert finding.severity is rule.severity


class TestScoping:
    """Path-scoped rules must not run outside their packages."""

    @pytest.mark.parametrize(
        "rule,outside",
        [
            (DeterminismRule(), "src/repro/experiments/fig2_pa.py"),
            (OrderedIterationRule(), "src/repro/graphs/graph.py"),
            (FloatAccumulationRule(), "src/repro/evaluation/metrics.py"),
            (DtypeDisciplineRule(), "src/repro/mapreduce/engine.py"),
            (NativeBoundaryRule(), "src/repro/baselines/degree_matcher.py"),
        ],
    )
    def test_out_of_scope_path_is_skipped(self, rule, outside):
        assert not rule.applies_to(outside)

    def test_shm_rule_is_global(self):
        assert ShmLifecycleRule().applies_to("benchmarks/bench_x.py")

    def test_non_repro_tree_never_matches_scoped_rules(self):
        assert not DeterminismRule().applies_to(
            "tests/analysis/fixtures/bad_determinism.py"
        )


class TestRuleEdgeCases:
    def test_seeded_random_instance_methods_allowed(self):
        src = SourceFile.from_source(
            "import random\n"
            "def pick(seed, items):\n"
            "    rng = random.Random(seed)\n"
            "    return rng.choice(items)\n",
            "src/repro/core/x.py",
        )
        assert list(DeterminismRule().check(src)) == []

    def test_rebound_set_name_is_untracked(self):
        src = SourceFile.from_source(
            "def f(edges):\n"
            "    pending = set(edges)\n"
            "    pending = sorted(pending)\n"
            "    return [x for x in pending]\n",
            "src/repro/core/x.py",
        )
        assert list(OrderedIterationRule().check(src)) == []

    def test_int_wrapped_sum_requires_direct_wrap(self):
        src = SourceFile.from_source(
            "def f(vals):\n"
            "    return int(1 + sum(vals))\n",
            "src/repro/core/x.py",
        )
        findings = list(FloatAccumulationRule().check(src))
        assert [f.line for f in findings] == [2]

    def test_shm_with_statement_accepted(self):
        src = SourceFile.from_source(
            "from multiprocessing.shared_memory import SharedMemory\n"
            "def f(name):\n"
            "    with SharedMemory(name=name) as shm:\n"
            "        return bytes(shm.buf[:1])\n",
            "src/repro/core/x.py",
        )
        assert list(ShmLifecycleRule().check(src)) == []

    def test_dtype_rule_ignores_non_numpy_calls(self):
        src = SourceFile.from_source(
            "def f(values):\n"
            "    indices = list(values)\n"
            "    return indices\n",
            "src/repro/graphs/x.py",
        )
        assert list(DtypeDisciplineRule().check(src)) == []

    def test_tuple_target_with_index_name_checked(self):
        src = SourceFile.from_source(
            "import numpy as np\n"
            "def f(n):\n"
            "    indptr, extra = np.zeros(n), 0\n"
            "    return indptr, extra\n",
            "src/repro/graphs/x.py",
        )
        # Conservative: any index-like name in the target tuple makes
        # the (single, un-dtyped) numpy construction on the rhs suspect
        # only when the rhs itself is an np ctor call — a tuple rhs is
        # not, so this stays clean rather than guessing element-wise.
        assert list(DtypeDisciplineRule().check(src)) == []
