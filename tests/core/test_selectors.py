"""Unit tests for the greedy and Gale–Shapley selection policies."""

import pytest

from repro.core.config import TiePolicy
from repro.core.selectors import (
    SELECTORS,
    get_selector,
    select_gale_shapley,
    select_greedy_top_score,
)
from repro.errors import MatcherRegistryError


class TestGreedyTopScore:
    def test_highest_score_wins_contention(self):
        scores = {1: {10: 5}, 2: {10: 3, 11: 2}}
        out = select_greedy_top_score(scores, threshold=2)
        assert out == {1: 10, 2: 11}

    def test_threshold_filters(self):
        scores = {1: {10: 1}}
        assert select_greedy_top_score(scores, threshold=2) == {}

    def test_never_reuses_endpoints(self):
        scores = {1: {10: 5, 11: 4}, 2: {10: 4, 11: 5}}
        out = select_greedy_top_score(scores, threshold=1)
        assert out == {1: 10, 2: 11}
        assert len(set(out.values())) == len(out)

    def test_matches_where_mutual_best_abstains(self):
        # 1 and 2 tie on 10: mutual-best (SKIP) refuses both, greedy
        # still links the canonically-first one.
        scores = {1: {10: 3}, 2: {10: 3}}
        out = select_greedy_top_score(scores, threshold=2)
        assert out == {1: 10}

    def test_deterministic_under_ties(self):
        scores = {2: {11: 3, 10: 3}, 1: {10: 3, 11: 3}}
        a = select_greedy_top_score(scores, threshold=1)
        b = select_greedy_top_score(dict(reversed(scores.items())), 1)
        assert a == b == {1: 10, 2: 11}

    def test_empty(self):
        assert select_greedy_top_score({}, threshold=1) == {}


class TestGaleShapley:
    def test_simple_assignment(self):
        scores = {1: {10: 5, 11: 2}, 2: {11: 4}}
        out = select_gale_shapley(scores, threshold=2)
        assert out == {1: 10, 2: 11}

    def test_right_side_trades_up(self):
        # Both want 10; 1 scores higher, so 2 falls back to 11.
        scores = {1: {10: 5, 11: 1}, 2: {10: 3, 11: 2}}
        out = select_gale_shapley(scores, threshold=1)
        assert out == {1: 10, 2: 11}

    def test_no_blocking_pair(self):
        scores = {
            1: {10: 5, 11: 4, 12: 1},
            2: {10: 4, 11: 5, 12: 2},
            3: {10: 3, 11: 3, 12: 6},
        }
        out = select_gale_shapley(scores, threshold=1)
        assert len(set(out.values())) == len(out)
        # Stability: no (v1, v2) where both strictly prefer each other
        # over their assigned partners.
        matched_right = {v2: v1 for v1, v2 in out.items()}
        for v1, row in scores.items():
            own = row.get(out.get(v1), 0)
            for v2, sc in row.items():
                if sc <= own:
                    continue
                holder = matched_right.get(v2)
                held = scores[holder][v2] if holder else 0
                assert held >= sc, f"blocking pair ({v1}, {v2})"

    def test_threshold_filters(self):
        scores = {1: {10: 1}}
        assert select_gale_shapley(scores, threshold=2) == {}

    def test_displaced_proposer_continues(self):
        # 2 takes 10 from 1; 1 must then win 11.
        scores = {1: {10: 3, 11: 2}, 2: {10: 5}}
        out = select_gale_shapley(scores, threshold=1)
        assert out == {2: 10, 1: 11}

    def test_empty(self):
        assert select_gale_shapley({}, threshold=1) == {}

    def test_deterministic_under_ties(self):
        scores = {1: {10: 3}, 2: {10: 3}}
        out = select_gale_shapley(scores, threshold=1)
        assert out == {1: 10}


class TestSelectorLookup:
    def test_three_policies_registered(self):
        assert set(SELECTORS) == {
            "mutual-best",
            "greedy",
            "gale-shapley",
        }

    def test_get_selector_resolves(self):
        assert get_selector("greedy") is select_greedy_top_score

    def test_unknown_policy_raises(self):
        with pytest.raises(MatcherRegistryError, match="mutual-best"):
            get_selector("optimal")

    def test_uniform_signature(self):
        scores = {1: {10: 5}}
        for name, selector in SELECTORS.items():
            out = selector(scores, 2, TiePolicy.SKIP)
            assert out == {1: 10}, name
