"""Failure-injection and edge-case tests for the matcher."""

import pytest

from repro.core.config import MatcherConfig
from repro.core.matcher import UserMatching
from repro.graphs.graph import Graph
from repro.sampling.pair import GraphPair


class TestDegenerateGraphs:
    def test_empty_graphs(self):
        result = UserMatching().run(Graph(), Graph(), {})
        assert result.links == {}

    def test_seeds_only_no_structure(self):
        g1 = Graph.from_edges([], nodes=[0, 1])
        g2 = Graph.from_edges([], nodes=[0, 1])
        result = UserMatching().run(g1, g2, {0: 0})
        assert result.links == {0: 0}

    def test_disjoint_components_do_not_cross(self):
        # Two components; seeds only in the first. The second gets no
        # witnesses, hence no links.
        g = Graph.from_edges([(0, 1), (1, 2), (10, 11), (11, 12)])
        result = UserMatching(MatcherConfig(threshold=1)).run(
            g, g.copy(), {0: 0, 1: 1}
        )
        for v in (10, 11, 12):
            assert v not in result.links

    def test_isolated_nodes_never_matched(self):
        g1 = Graph.from_edges([(0, 1), (1, 2)], nodes=[9])
        g2 = Graph.from_edges([(0, 1), (1, 2)], nodes=[9])
        result = UserMatching(
            MatcherConfig(threshold=1, min_bucket_exponent=0)
        ).run(g1, g2, {1: 1})
        assert 9 not in result.links

    def test_star_leaves_all_tie(self, star):
        # All leaves of a star are automorphic: with SKIP, none match.
        result = UserMatching(
            MatcherConfig(threshold=1, min_bucket_exponent=0)
        ).run(star, star.copy(), {0: 0})
        assert result.links == {0: 0}

    def test_asymmetric_graph_sizes(self):
        g1 = Graph.from_edges([(0, 1)])
        g2 = Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 4)])
        result = UserMatching(MatcherConfig(threshold=1)).run(g1, g2, {0: 0})
        assert set(result.links) <= {0, 1}

    def test_all_nodes_seeded(self, pa_pair):
        seeds = dict(pa_pair.identity)
        result = UserMatching().run(pa_pair.g1, pa_pair.g2, seeds)
        assert result.links == seeds
        assert result.num_new_links == 0


class TestCrossIdSpaces:
    def test_string_vs_int_ids(self):
        g1 = Graph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
        g2 = Graph.from_edges([("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")])
        identity = {0: "a", 1: "b", 2: "c", 3: "d"}
        pair = GraphPair(g1=g1, g2=g2, identity=identity)
        result = UserMatching(
            MatcherConfig(threshold=1, min_bucket_exponent=0)
        ).run(g1, g2, {0: "a", 1: "b"})
        # node 2 has two witnesses (0->a, 1->b): must be found.
        assert result.links.get(2) == "c"
        assert pair.identity[2] == result.links[2]


class TestMaxDegreeOverride:
    def test_small_max_degree_still_correct(self, pa_pair, pa_seeds):
        full = UserMatching(
            MatcherConfig(threshold=2, iterations=2)
        ).run(pa_pair.g1, pa_pair.g2, pa_seeds)
        capped = UserMatching(
            MatcherConfig(threshold=2, iterations=2, max_degree=4)
        ).run(pa_pair.g1, pa_pair.g2, pa_seeds)
        # A single low bucket behaves like no bucketing: still one-to-one
        # and seed-preserving.
        assert len(set(capped.links.values())) == len(capped.links)
        for v1, v2 in pa_seeds.items():
            assert capped.links[v1] == v2
        # Both find a substantial portion of the graph.
        assert len(capped.links) > 0.3 * len(full.links)


class TestWitnessAccountingAcrossIterations:
    def test_second_iteration_absorbs_last_buckets_links(self, pa_pair):
        """Links created in the floor bucket of iteration 1 must become
        witnesses in iteration 2 (regression test for the deferred
        absorption logic)."""
        from repro.seeds.generators import sample_seeds

        seeds = sample_seeds(pa_pair, 0.05, seed=3)
        one = UserMatching(
            MatcherConfig(threshold=2, iterations=1)
        ).run(pa_pair.g1, pa_pair.g2, seeds)
        two = UserMatching(
            MatcherConfig(threshold=2, iterations=2)
        ).run(pa_pair.g1, pa_pair.g2, seeds)
        assert len(two.links) > len(one.links)
