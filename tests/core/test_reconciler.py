"""Tests for the composable Reconciler pipeline."""

import pytest

from repro.baselines.common_neighbors import CommonNeighborsMatcher
from repro.core.config import TiePolicy
from repro.core.reconciler import (
    Reconciler,
    common_neighbor_candidates,
    degree_ratio_validator,
    normalized_witness_kernel,
    witness_count_kernel,
)
from repro.core.result import MatchingResult, StageTiming
from repro.errors import MatcherConfigError, MatcherRegistryError
from repro.generators.preferential_attachment import (
    preferential_attachment_graph,
)
from repro.graphs.graph import Graph
from repro.sampling.edge_sampling import independent_copies
from repro.seeds.generators import sample_seeds


@pytest.fixture(scope="module")
def workload():
    graph = preferential_attachment_graph(300, 5, seed=21)
    pair = independent_copies(graph, s1=0.6, seed=22)
    seeds = sample_seeds(pair, 0.12, seed=23)
    return pair, seeds


class TestDefaultPipeline:
    def test_matches_iterated_common_neighbors(self, workload):
        """Default stages = the unbucketed mutual-best matcher."""
        pair, seeds = workload
        pipe = Reconciler(threshold=2, rounds=3)
        baseline = CommonNeighborsMatcher(threshold=2, iterations=3)
        a = pipe.run(pair.g1, pair.g2, seeds)
        b = baseline.run(pair.g1, pair.g2, seeds)
        assert a.links == b.links

    def test_links_extend_seeds(self, workload):
        pair, seeds = workload
        result = Reconciler(threshold=2).run(pair.g1, pair.g2, seeds)
        assert set(seeds.items()) <= set(result.links.items())
        assert len(set(result.links.values())) == len(result.links)

    def test_phase_records_and_timings(self, workload):
        pair, seeds = workload
        result = Reconciler(threshold=2, rounds=2).run(pair.g1, pair.g2, seeds)
        assert result.phases
        assert all(p.links_added >= 0 for p in result.phases)
        stages = {t.stage for t in result.timings}
        # the candidate stage is fused into the kernel by default
        assert {"seeds", "score", "select"} <= stages
        assert "candidates" not in stages
        assert all(isinstance(t, StageTiming) for t in result.timings)
        assert all(t.elapsed >= 0 for t in result.timings)

    def test_progress_events_per_stage(self, workload):
        pair, seeds = workload
        events = []
        Reconciler(threshold=2, rounds=2).run(
            pair.g1, pair.g2, seeds, progress=events.append
        )
        assert events[0].stage == "seeds"
        assert [e.step for e in events] == list(range(1, len(events) + 1))
        assert {"score", "select"} <= {e.stage for e in events}

    def test_stops_early_when_no_progress(self, workload):
        pair, seeds = workload
        result = Reconciler(threshold=2, rounds=50).run(
            pair.g1, pair.g2, seeds
        )
        # Early-exit: far fewer rounds than the budget actually ran.
        assert len(result.phases) < 50


class TestPluggableStages:
    def test_selector_by_name_changes_outcome(self, workload):
        pair, seeds = workload
        strict = Reconciler(threshold=2, rounds=2).run(pair.g1, pair.g2, seeds)
        greedy = Reconciler(
            threshold=2, rounds=2, selector="greedy"
        ).run(pair.g1, pair.g2, seeds)
        assert greedy.num_links >= strict.num_links

    def test_custom_selector_callable(self, workload):
        pair, seeds = workload

        def take_nothing(scores, threshold, tie_policy=TiePolicy.SKIP):
            return {}

        result = Reconciler(selector=take_nothing).run(pair.g1, pair.g2, seeds)
        assert result.links == seeds

    def test_normalized_kernel(self, workload):
        pair, seeds = workload
        result = Reconciler(
            threshold=1, rounds=2, scorer=normalized_witness_kernel
        ).run(pair.g1, pair.g2, seeds)
        assert set(seeds.items()) <= set(result.links.items())

    def test_custom_candidate_stage_restricts_pairs(self, workload):
        pair, seeds = workload
        allowed = {v1 for v1 in pair.g1.nodes() if isinstance(v1, int)}

        def degree_floor_candidates(g1, g2, links):
            cands = common_neighbor_candidates(g1, g2, links)
            return {
                v1: cset
                for v1, cset in cands.items()
                if g1.degree(v1) >= 8
            }

        result = Reconciler(
            threshold=2, candidates=degree_floor_candidates
        ).run(pair.g1, pair.g2, seeds)
        for v1 in result.new_links:
            assert pair.g1.degree(v1) >= 8
            assert v1 in allowed
        # a configured candidate stage is timed and reported
        assert "candidates" in {t.stage for t in result.timings}

    def test_seed_strategy_stage(self, workload):
        pair, seeds = workload

        def halved(g1, g2, s):
            keep = sorted(s)[: len(s) // 2]
            return {v1: s[v1] for v1 in keep}

        result = Reconciler(seed_strategy=halved).run(pair.g1, pair.g2, seeds)
        assert len(result.seeds) == len(seeds) // 2

    def test_explicit_candidate_join_matches_fused_default(self, workload):
        pair, seeds = workload
        fused = Reconciler(threshold=2, rounds=2).run(pair.g1, pair.g2, seeds)
        explicit = Reconciler(
            threshold=2, rounds=2, candidates=common_neighbor_candidates
        ).run(pair.g1, pair.g2, seeds)
        assert fused.links == explicit.links

    def test_rogue_selector_cannot_break_one_to_one(self, workload):
        pair, seeds = workload
        free_right = sorted(
            set(pair.g2.nodes()) - set(seeds.values()), key=repr
        )
        target = free_right[0]

        def collide_everything(scores, threshold, tie_policy):
            return {v1: target for v1 in scores}

        result = Reconciler(selector=collide_everything).run(
            pair.g1, pair.g2, seeds
        )
        assert len(set(result.links.values())) == len(result.links)

    def test_unknown_selector_name(self):
        with pytest.raises(MatcherRegistryError):
            Reconciler(selector="best-first")


class TestValidators:
    def test_validator_filters_new_links(self, workload):
        pair, seeds = workload

        def drop_everything_new(g1, g2, links, start):
            return {v1: v2 for v1, v2 in links.items() if v1 in start}

        result = Reconciler(
            threshold=2, validators=[drop_everything_new]
        ).run(pair.g1, pair.g2, seeds)
        assert result.links == seeds

    def test_validator_may_not_drop_seeds(self, workload):
        pair, seeds = workload

        def overzealous(g1, g2, links, start):
            return {}

        with pytest.raises(MatcherConfigError, match="seed"):
            Reconciler(validators=[overzealous]).run(pair.g1, pair.g2, seeds)

    def test_validator_may_not_remap_seeds(self, workload):
        pair, seeds = workload
        victim = sorted(seeds, key=repr)[0]

        def sneaky(g1, g2, links, start):
            return {**links, victim: object()}

        with pytest.raises(MatcherConfigError, match="remapped"):
            Reconciler(validators=[sneaky]).run(pair.g1, pair.g2, seeds)

    def test_degree_ratio_validator_drops_mismatches(self):
        # Star center (degree 4) vs leaf-degree node: ratio 4 > 2.
        g1 = Graph.from_edges([(0, i) for i in range(1, 5)] + [(1, 5)])
        g2 = Graph.from_edges([(10, i) for i in range(11, 15)] + [(11, 15)])
        validate = degree_ratio_validator(max_ratio=2.0)
        links = {0: 10, 1: 11, 5: 10}
        out = validate(g1, g2, {**links}, {0: 10})
        assert 0 in out  # seed: kept regardless
        assert 1 in out  # degrees 2 vs 2
        assert 5 not in out  # degree 1 vs degree 4: ratio 4 > 2

    def test_degree_ratio_validator_rejects_bad_ratio(self):
        with pytest.raises(MatcherConfigError):
            degree_ratio_validator(0.5)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"threshold": 0},
            {"threshold": -1},
            {"rounds": 0},
            {"tie_policy": "skip"},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(MatcherConfigError):
            Reconciler(**kwargs)

    def test_result_type(self, workload):
        pair, seeds = workload
        result = Reconciler().run(pair.g1, pair.g2, seeds)
        assert isinstance(result, MatchingResult)


class TestScorerLifetime:
    def test_user_scorer_close_is_not_called(self, workload):
        """Only the per-run csr scorer is closed; a user-supplied scorer
        with its own close() manages its own lifetime across runs."""
        pair, seeds = workload
        closed = []

        def scorer(g1, g2, links, candidates=None):
            return {}

        scorer.close = lambda: closed.append(True)
        pipeline = Reconciler(scorer=scorer, rounds=1)
        pipeline.run(pair.g1, pair.g2, seeds)
        pipeline.run(pair.g1, pair.g2, seeds)
        assert closed == []

    def test_workers_validated(self):
        with pytest.raises(MatcherConfigError):
            Reconciler(workers=0)
