"""Unit tests for the User-Matching algorithm."""

import pytest

from repro.core.config import MatcherConfig, TiePolicy
from repro.core.matcher import UserMatching
from repro.core.pipeline import reconcile
from repro.errors import MatcherConfigError
from repro.graphs.graph import Graph
from repro.sampling.edge_sampling import independent_copies
from repro.seeds.generators import sample_seeds


def identical_pair(graph):
    """A pair with s = 1 copies (both copies equal the graph)."""
    return independent_copies(graph, 1.0, seed=0)


class TestBasicBehaviour:
    def test_links_include_seeds(self, pa_pair, pa_seeds):
        result = UserMatching().run(pa_pair.g1, pa_pair.g2, pa_seeds)
        for v1, v2 in pa_seeds.items():
            assert result.links[v1] == v2

    def test_expands_beyond_seeds(self, pa_pair, pa_seeds):
        result = UserMatching(
            MatcherConfig(threshold=2, iterations=2)
        ).run(pa_pair.g1, pa_pair.g2, pa_seeds)
        assert result.num_new_links > len(pa_seeds)

    def test_output_one_to_one(self, pa_pair, pa_seeds):
        result = UserMatching(
            MatcherConfig(threshold=2, iterations=2)
        ).run(pa_pair.g1, pa_pair.g2, pa_seeds)
        assert len(set(result.links.values())) == len(result.links)

    def test_no_seeds_no_links(self, pa_pair):
        result = UserMatching().run(pa_pair.g1, pa_pair.g2, {})
        assert result.links == {}

    def test_deterministic(self, pa_pair, pa_seeds):
        cfg = MatcherConfig(threshold=2, iterations=2)
        a = UserMatching(cfg).run(pa_pair.g1, pa_pair.g2, pa_seeds)
        b = UserMatching(cfg).run(pa_pair.g1, pa_pair.g2, pa_seeds)
        assert a.links == b.links

    def test_perfect_copies_high_accuracy(self, small_pa):
        pair = identical_pair(small_pa)
        seeds = sample_seeds(pair, 0.1, seed=1)
        result = UserMatching(
            MatcherConfig(threshold=2, iterations=2)
        ).run(pair.g1, pair.g2, seeds)
        correct = sum(1 for v1, v2 in result.links.items() if v1 == v2)
        assert correct / len(result.links) > 0.95


class TestSeedValidation:
    def test_non_injective_seeds_rejected(self, pa_pair):
        with pytest.raises(MatcherConfigError):
            UserMatching().run(pa_pair.g1, pa_pair.g2, {1: 5, 2: 5})

    def test_seed_missing_from_g1(self, pa_pair):
        with pytest.raises(MatcherConfigError):
            UserMatching().run(pa_pair.g1, pa_pair.g2, {"ghost": 0})

    def test_seed_missing_from_g2(self, pa_pair):
        with pytest.raises(MatcherConfigError):
            UserMatching().run(pa_pair.g1, pa_pair.g2, {0: "ghost"})


class TestBucketSchedule:
    def test_bucket_exponents_descend(self, pa_pair):
        matcher = UserMatching(MatcherConfig())
        exps = matcher.bucket_exponents(pa_pair.g1, pa_pair.g2)
        assert exps == sorted(exps, reverse=True)
        assert exps[-1] == 1

    def test_bucket_exponents_honour_floor(self, pa_pair):
        matcher = UserMatching(MatcherConfig(min_bucket_exponent=3))
        exps = matcher.bucket_exponents(pa_pair.g1, pa_pair.g2)
        assert exps[-1] == 3

    def test_bucket_exponents_from_max_degree(self, pa_pair):
        matcher = UserMatching(MatcherConfig(max_degree=64))
        exps = matcher.bucket_exponents(pa_pair.g1, pa_pair.g2)
        assert exps[0] == 6

    def test_no_buckets_single_round(self, pa_pair):
        matcher = UserMatching(
            MatcherConfig(use_degree_buckets=False, min_bucket_exponent=0)
        )
        assert matcher.bucket_exponents(pa_pair.g1, pa_pair.g2) == [0]

    def test_empty_graph_bucket(self):
        matcher = UserMatching(MatcherConfig())
        assert matcher.bucket_exponents(Graph(), Graph()) == [1]


class TestPhases:
    def test_phase_records_cover_buckets(self, pa_pair, pa_seeds):
        cfg = MatcherConfig(threshold=2, iterations=1)
        matcher = UserMatching(cfg)
        result = matcher.run(pa_pair.g1, pa_pair.g2, pa_seeds)
        exps = matcher.bucket_exponents(pa_pair.g1, pa_pair.g2)
        assert len(result.phases) == len(exps)
        assert [p.bucket_exponent for p in result.phases] == exps

    def test_phase_min_degree_matches_exponent(self, pa_pair, pa_seeds):
        result = UserMatching(MatcherConfig(iterations=1)).run(
            pa_pair.g1, pa_pair.g2, pa_seeds
        )
        for phase in result.phases:
            assert phase.min_degree == 1 << phase.bucket_exponent

    def test_links_added_sums_to_new_links(self, pa_pair, pa_seeds):
        result = UserMatching(
            MatcherConfig(threshold=2, iterations=2)
        ).run(pa_pair.g1, pa_pair.g2, pa_seeds)
        assert (
            sum(p.links_added for p in result.phases)
            == result.num_new_links
        )

    def test_early_termination(self, pa_pair):
        # With an impossible threshold nothing matches: one sweep only.
        cfg = MatcherConfig(threshold=10 ** 6, iterations=5)
        matcher = UserMatching(cfg)
        result = matcher.run(pa_pair.g1, pa_pair.g2, {0: 0})
        exps = matcher.bucket_exponents(pa_pair.g1, pa_pair.g2)
        assert len(result.phases) == len(exps)


class TestConfigEffects:
    def test_threshold_monotone_precision(self, pa_pair, pa_seeds):
        from repro.evaluation.metrics import evaluate

        low = UserMatching(
            MatcherConfig(threshold=2, iterations=2)
        ).run(pa_pair.g1, pa_pair.g2, pa_seeds)
        high = UserMatching(
            MatcherConfig(threshold=4, iterations=2)
        ).run(pa_pair.g1, pa_pair.g2, pa_seeds)
        assert len(high.links) <= len(low.links)
        rep_low = evaluate(low, pa_pair)
        rep_high = evaluate(high, pa_pair)
        assert rep_high.precision >= rep_low.precision - 0.02

    def test_more_iterations_more_links(self, pa_pair, pa_seeds):
        one = UserMatching(
            MatcherConfig(threshold=3, iterations=1)
        ).run(pa_pair.g1, pa_pair.g2, pa_seeds)
        three = UserMatching(
            MatcherConfig(threshold=3, iterations=3)
        ).run(pa_pair.g1, pa_pair.g2, pa_seeds)
        assert len(three.links) >= len(one.links)

    def test_lowest_id_matches_at_least_skip(self, pa_pair, pa_seeds):
        skip = UserMatching(
            MatcherConfig(threshold=2, tie_policy=TiePolicy.SKIP)
        ).run(pa_pair.g1, pa_pair.g2, pa_seeds)
        forced = UserMatching(
            MatcherConfig(threshold=2, tie_policy=TiePolicy.LOWEST_ID)
        ).run(pa_pair.g1, pa_pair.g2, pa_seeds)
        assert len(forced.links) >= len(skip.links)


class TestReconcileWrapper:
    def test_reconcile_equals_matcher(self, pa_pair, pa_seeds):
        direct = UserMatching(
            MatcherConfig(threshold=2, iterations=2)
        ).run(pa_pair.g1, pa_pair.g2, pa_seeds)
        wrapped = reconcile(
            pa_pair.g1, pa_pair.g2, pa_seeds, threshold=2, iterations=2
        )
        assert direct.links == wrapped.links

    def test_reconcile_no_buckets(self, pa_pair, pa_seeds):
        result = reconcile(
            pa_pair.g1,
            pa_pair.g2,
            pa_seeds,
            threshold=2,
            use_degree_buckets=False,
        )
        assert result.num_links >= len(pa_seeds)


class TestResultType:
    def test_new_links_excludes_seeds(self, pa_pair, pa_seeds):
        result = UserMatching(
            MatcherConfig(threshold=2, iterations=2)
        ).run(pa_pair.g1, pa_pair.g2, pa_seeds)
        for v1 in result.new_links:
            assert v1 not in pa_seeds

    def test_total_witnesses_positive(self, pa_pair, pa_seeds):
        result = UserMatching().run(pa_pair.g1, pa_pair.g2, pa_seeds)
        assert result.total_witnesses > 0

    def test_repr(self, pa_pair, pa_seeds):
        result = UserMatching().run(pa_pair.g1, pa_pair.g2, pa_seeds)
        assert "MatchingResult" in repr(result)
