"""Unit tests for link persistence."""

import pytest

from repro.core.links_io import read_links, write_links
from repro.errors import ReproError


class TestLinksRoundTrip:
    def test_int_ids(self, tmp_path):
        links = {1: 10, 2: 20}
        path = tmp_path / "links.tsv"
        write_links(links, path)
        assert read_links(path) == links

    def test_string_ids(self, tmp_path):
        links = {"fr:42": "de:42", "fr:7": "de:9"}
        path = tmp_path / "links.tsv"
        write_links(links, path)
        assert read_links(path) == links

    def test_gzip(self, tmp_path):
        links = {i: i + 100 for i in range(50)}
        path = tmp_path / "links.tsv.gz"
        write_links(links, path)
        assert read_links(path) == links

    def test_header_comment(self, tmp_path):
        path = tmp_path / "links.tsv"
        write_links({1: 2}, path, header="threshold=2\niterations=2")
        text = path.read_text()
        assert "# threshold=2" in text
        assert read_links(path) == {1: 2}

    def test_malformed_raises(self, tmp_path):
        path = tmp_path / "links.tsv"
        path.write_text("only-one-column\n")
        with pytest.raises(ReproError):
            read_links(path)

    def test_duplicate_source_raises(self, tmp_path):
        path = tmp_path / "links.tsv"
        path.write_text("1\t2\n1\t3\n")
        with pytest.raises(ReproError):
            read_links(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "links.tsv"
        write_links({}, path)
        assert read_links(path) == {}


class TestSeedingLoop:
    def test_saved_links_seed_a_second_run(self, tmp_path, pa_pair, pa_seeds):
        """The incremental-deployment loop: run, persist, reload, rerun."""
        from repro.core.config import MatcherConfig
        from repro.core.matcher import UserMatching

        first = UserMatching(
            MatcherConfig(threshold=3, iterations=1)
        ).run(pa_pair.g1, pa_pair.g2, pa_seeds)
        path = tmp_path / "links.tsv"
        write_links(first.links, path)
        reloaded = read_links(path)
        second = UserMatching(
            MatcherConfig(threshold=3, iterations=1)
        ).run(pa_pair.g1, pa_pair.g2, reloaded)
        assert len(second.links) >= len(first.links)
        for v1, v2 in first.links.items():
            assert second.links[v1] == v2
