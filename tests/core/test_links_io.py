"""Unit tests for link persistence."""

import numpy as np
import pytest

from repro.core.links_io import (
    LinkStore,
    load_checkpoint,
    read_links,
    save_checkpoint,
    write_links,
)
from repro.errors import ReproError


class TestLinksRoundTrip:
    def test_int_ids(self, tmp_path):
        links = {1: 10, 2: 20}
        path = tmp_path / "links.tsv"
        write_links(links, path)
        assert read_links(path) == links

    def test_string_ids(self, tmp_path):
        links = {"fr:42": "de:42", "fr:7": "de:9"}
        path = tmp_path / "links.tsv"
        write_links(links, path)
        assert read_links(path) == links

    def test_gzip(self, tmp_path):
        links = {i: i + 100 for i in range(50)}
        path = tmp_path / "links.tsv.gz"
        write_links(links, path)
        assert read_links(path) == links

    def test_header_comment(self, tmp_path):
        path = tmp_path / "links.tsv"
        write_links({1: 2}, path, header="threshold=2\niterations=2")
        text = path.read_text()
        assert "# threshold=2" in text
        assert read_links(path) == {1: 2}

    def test_malformed_raises(self, tmp_path):
        path = tmp_path / "links.tsv"
        path.write_text("only-one-column\n")
        with pytest.raises(ReproError):
            read_links(path)

    def test_duplicate_source_raises(self, tmp_path):
        path = tmp_path / "links.tsv"
        path.write_text("1\t2\n1\t3\n")
        with pytest.raises(ReproError):
            read_links(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "links.tsv"
        write_links({}, path)
        assert read_links(path) == {}


class TestSeedingLoop:
    def test_saved_links_seed_a_second_run(self, tmp_path, pa_pair, pa_seeds):
        """The incremental-deployment loop: run, persist, reload, rerun."""
        from repro.core.config import MatcherConfig
        from repro.core.matcher import UserMatching

        first = UserMatching(
            MatcherConfig(threshold=3, iterations=1)
        ).run(pa_pair.g1, pa_pair.g2, pa_seeds)
        path = tmp_path / "links.tsv"
        write_links(first.links, path)
        reloaded = read_links(path)
        second = UserMatching(
            MatcherConfig(threshold=3, iterations=1)
        ).run(pa_pair.g1, pa_pair.g2, reloaded)
        assert len(second.links) >= len(first.links)
        for v1, v2 in first.links.items():
            assert second.links[v1] == v2


class TestLinkStore:
    def test_append_and_replay(self, tmp_path):
        store = LinkStore(tmp_path / "run.jsonl")
        store.append_seeds({1: 10, 2: 20})
        store.append_links({3: 30}, round=1)
        store.append_delta({"added_edges": 4})
        events = list(store.events())
        assert [e["type"] for e in events] == ["seeds", "links", "delta"]
        assert events[1]["round"] == 1
        assert store.links() == {1: 10, 2: 20, 3: 30}

    def test_missing_file_is_empty(self, tmp_path):
        store = LinkStore(tmp_path / "absent.jsonl")
        assert list(store.events()) == []
        assert store.links() == {}

    def test_empty_store_round_trips_empty_result(self, tmp_path):
        store = LinkStore(tmp_path / "run.jsonl")
        store.append_seeds({})
        store.append_links({}, round=1)
        assert store.links() == {}

    def test_unicode_node_ids(self, tmp_path):
        store = LinkStore(tmp_path / "run.jsonl")
        links = {"fr:héros": "de:größe", "日本": "中文"}
        store.append_links(links)
        assert store.links() == links

    def test_later_confirmations_overwrite(self, tmp_path):
        store = LinkStore(tmp_path / "run.jsonl")
        store.append_seeds({1: 10})
        store.append_links({1: 11})
        assert store.links() == {1: 11}

    def test_truncated_final_line_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        store = LinkStore(path)
        store.append_seeds({1: 10})
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"type": "links", "links": [[2,')  # no newline
        with pytest.raises(ReproError, match="truncated|invalid"):
            list(store.events())

    def test_invalid_json_line_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text("not json at all\n", encoding="utf-8")
        with pytest.raises(ReproError):
            list(LinkStore(path).events())

    def test_non_object_event_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text("[1, 2, 3]\n", encoding="utf-8")
        with pytest.raises(ReproError):
            list(LinkStore(path).events())


class TestCheckpointIO:
    def test_arrays_and_meta_round_trip(self, tmp_path):
        path = tmp_path / "state.npz"
        arrays = {
            "ints": np.arange(5, dtype=np.int64),
            "empty": np.empty(0, dtype=np.int64),
        }
        nodes = np.empty(3, dtype=object)
        nodes[:] = ["fr:héros", 7, "中文"]
        arrays["nodes"] = nodes
        save_checkpoint(path, arrays, {"version": 1, "note": "ünï"})
        loaded, meta = load_checkpoint(path)
        assert meta == {"version": 1, "note": "ünï"}
        assert np.array_equal(loaded["ints"], arrays["ints"])
        assert len(loaded["empty"]) == 0
        assert list(loaded["nodes"]) == ["fr:héros", 7, "中文"]

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ReproError):
            load_checkpoint(tmp_path / "absent.npz")

    def test_truncated_file_raises(self, tmp_path):
        path = tmp_path / "state.npz"
        save_checkpoint(path, {"a": np.arange(1000)}, {"v": 1})
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(ReproError):
            load_checkpoint(path)

    def test_foreign_npz_without_meta_raises(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, a=np.arange(3))
        with pytest.raises(ReproError):
            load_checkpoint(path)

    def test_reserved_key_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            save_checkpoint(
                tmp_path / "x.npz",
                {"__meta_json__": np.arange(1)},
                {},
            )

    def test_write_is_atomic(self, tmp_path):
        path = tmp_path / "state.npz"
        save_checkpoint(path, {"a": np.arange(3)}, {"v": 1})
        # No temp file left behind after a successful write.
        assert list(tmp_path.iterdir()) == [path]

    def test_retractions_withdraw_links(self, tmp_path):
        store = LinkStore(tmp_path / "run.jsonl")
        store.append_seeds({1: 10, 2: 20})
        store.append_retractions([2])
        store.append_links({3: 30})
        assert store.links() == {1: 10, 3: 30}


class TestNodeIdEscaping:
    """Ids that used to corrupt the TSV or lose their type (PR 8)."""

    def test_tab_and_newline_ids_round_trip(self, tmp_path):
        links = {"a\tb": "c\nd", "e\rf": "plain"}
        path = tmp_path / "links.tsv"
        write_links(links, path)
        # The file must still be line/tab parseable: 1 header + 2 rows.
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        assert all(line.count("\t") == 1 for line in lines[1:])
        assert read_links(path) == links

    def test_int_like_string_keeps_its_type(self, tmp_path):
        links = {"1": 2, 3: "4", " 5 ": "+6"}
        path = tmp_path / "links.tsv"
        write_links(links, path)
        restored = read_links(path)
        assert restored == links
        assert {type(k) for k in restored} == {str, int}

    def test_leading_quote_and_hash_and_empty(self, tmp_path):
        links = {'"quoted"': "#comment", "": "ok"}
        path = tmp_path / "links.tsv"
        write_links(links, path)
        assert read_links(path) == links

    def test_unwritable_id_type_rejected(self, tmp_path):
        path = tmp_path / "links.tsv"
        with pytest.raises(ReproError, match="round-trip"):
            write_links({(1, 2): 3}, path)
        with pytest.raises(ReproError, match="round-trip"):
            write_links({True: 1}, path)

    def test_token_helpers_round_trip(self):
        from repro.core.links_io import format_node_token, parse_node_token

        for node in [1, -7, "plain", "1", "", '"x"', "#y", "a\tb"]:
            assert parse_node_token(format_node_token(node)) == node
        with pytest.raises(ReproError):
            parse_node_token('"unterminated')
        with pytest.raises(ReproError):
            parse_node_token('"123"'[:-1] + "5")  # still malformed


class TestLinkStoreFsync:
    def test_fsync_default_on(self, tmp_path, monkeypatch):
        import os

        calls = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (calls.append(fd), real_fsync(fd))
        )
        store = LinkStore(tmp_path / "run.jsonl")
        assert store.fsync
        store.append_seeds({1: 10})
        assert len(calls) == 1

    def test_fsync_opt_out(self, tmp_path, monkeypatch):
        import os

        monkeypatch.setattr(
            os,
            "fsync",
            lambda fd: pytest.fail("fsync called with fsync=False"),
        )
        store = LinkStore(tmp_path / "run.jsonl", fsync=False)
        store.append_seeds({1: 10})
        assert store.links() == {1: 10}
