"""Unit tests for the numpy array kernels behind ``backend="csr"``."""

import numpy as np
import pytest

from repro.core import kernels
from repro.core.config import TiePolicy
from repro.core.kernels import (
    ArrayScores,
    count_witnesses,
    segmented_gather,
    select_greedy_arrays,
    select_mutual_best_arrays,
)
from repro.core.policy import select_mutual_best
from repro.core.scoring import (
    count_similarity_witnesses,
    count_similarity_witnesses_arrays,
)
from repro.core.selectors import select_greedy_top_score
from repro.graphs.graph import Graph
from repro.graphs.pair_index import GraphPairIndex

HAS_SCIPY = kernels._sparse is not None

SPARSE_MODES = [False] + ([True] if HAS_SCIPY else [])


def as_dict(scores: ArrayScores) -> dict:
    return {v1: dict(row) for v1, row in scores.to_dict().items()}


def reference_dict(scores: dict) -> dict:
    return {v1: dict(row) for v1, row in scores.items()}


class TestSegmentedGather:
    def test_concatenates_slices(self):
        g = Graph.from_edges([(0, 1), (0, 2), (1, 2), (2, 3)])
        index = GraphPairIndex(g, g.copy())
        csr = index.csr1
        targets = np.array([2, 0], dtype=np.int64)
        values, segments = segmented_gather(csr.indptr, csr.indices, targets)
        assert values.tolist() == (
            csr.neighbors(2).tolist() + csr.neighbors(0).tolist()
        )
        assert segments.tolist() == [0] * csr.degree(2) + [1] * csr.degree(0)

    def test_empty_targets(self):
        g = Graph.from_edges([(0, 1)])
        index = GraphPairIndex(g, g.copy())
        values, segments = segmented_gather(
            index.csr1.indptr,
            index.csr1.indices,
            np.empty(0, dtype=np.int64),
        )
        assert values.size == 0 and segments.size == 0


class TestCountWitnesses:
    @pytest.mark.parametrize("use_sparse", SPARSE_MODES)
    def test_matches_dict_kernel(self, pa_pair, pa_seeds, use_sparse):
        index = GraphPairIndex(pa_pair.g1, pa_pair.g2)
        for min_degree in (1, 2, 4):
            expected, emitted = count_similarity_witnesses(
                pa_pair.g1, pa_pair.g2, pa_seeds, min_degree
            )
            link_l, link_r = index.intern_links(pa_seeds)
            linked1 = np.zeros(index.n1, dtype=bool)
            linked2 = np.zeros(index.n2, dtype=bool)
            linked1[link_l] = True
            linked2[link_r] = True
            floor1, floor2 = index.eligibility(min_degree)
            scores, got_emitted = count_witnesses(
                index,
                link_l,
                link_r,
                ~linked1 & floor1,
                ~linked2 & floor2,
                use_sparse=use_sparse,
            )
            assert got_emitted == emitted
            assert as_dict(scores) == reference_dict(expected)

    def test_scoring_bridge_matches(self, pa_pair, pa_seeds):
        index = GraphPairIndex(pa_pair.g1, pa_pair.g2)
        expected, emitted = count_similarity_witnesses(
            pa_pair.g1, pa_pair.g2, pa_seeds, 2
        )
        scores, got = count_similarity_witnesses_arrays(
            index, pa_seeds, min_degree=2
        )
        assert got == emitted
        assert as_dict(scores) == reference_dict(expected)

    def test_bridge_tolerates_missing_right_endpoint(self, pa_pair):
        """Parity with the dict kernel's `if not g2_has(u2)` guard."""
        links = dict(list(pa_pair.identity.items())[:30])
        broken_left = next(iter(links))
        links[broken_left] = "not-in-g2"
        expected, emitted = count_similarity_witnesses(
            pa_pair.g1, pa_pair.g2, links, 2
        )
        index = GraphPairIndex(pa_pair.g1, pa_pair.g2)
        scores, got = count_similarity_witnesses_arrays(
            index, links, min_degree=2
        )
        assert got == emitted
        assert as_dict(scores) == reference_dict(expected)

    def test_sparse_and_numpy_paths_identical(self, pa_pair, pa_seeds):
        if not HAS_SCIPY:
            pytest.skip("scipy not installed")
        index = GraphPairIndex(pa_pair.g1, pa_pair.g2)
        link_l, link_r = index.intern_links(pa_seeds)
        elig1 = np.ones(index.n1, dtype=bool)
        elig2 = np.ones(index.n2, dtype=bool)
        a, ea = count_witnesses(
            index, link_l, link_r, elig1, elig2, use_sparse=True
        )
        b, eb = count_witnesses(
            index, link_l, link_r, elig1, elig2, use_sparse=False
        )
        assert ea == eb
        assert as_dict(a) == as_dict(b)

    def test_no_links(self, pa_pair):
        index = GraphPairIndex(pa_pair.g1, pa_pair.g2)
        scores, emitted = count_witnesses(
            index,
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.ones(index.n1, dtype=bool),
            np.ones(index.n2, dtype=bool),
        )
        assert emitted == 0 and scores.num_pairs == 0
        assert scores.to_dict() == {}

    def test_all_ineligible(self, pa_pair, pa_seeds):
        index = GraphPairIndex(pa_pair.g1, pa_pair.g2)
        link_l, link_r = index.intern_links(pa_seeds)
        scores, emitted = count_witnesses(
            index,
            link_l,
            link_r,
            np.zeros(index.n1, dtype=bool),
            np.zeros(index.n2, dtype=bool),
        )
        assert emitted == 0 and scores.num_pairs == 0

    def test_use_sparse_without_scipy_raises(
        self, pa_pair, pa_seeds, monkeypatch
    ):
        monkeypatch.setattr(kernels, "_sparse", None)
        index = GraphPairIndex(pa_pair.g1, pa_pair.g2)
        link_l, link_r = index.intern_links(pa_seeds)
        with pytest.raises(RuntimeError):
            count_witnesses(
                index,
                link_l,
                link_r,
                np.ones(index.n1, dtype=bool),
                np.ones(index.n2, dtype=bool),
                use_sparse=True,
            )


def _scores_fixture(pa_pair, pa_seeds):
    index = GraphPairIndex(pa_pair.g1, pa_pair.g2)
    scores, _ = count_similarity_witnesses_arrays(index, pa_seeds)
    return scores


class TestArraySelection:
    @pytest.mark.parametrize(
        "tie_policy", [TiePolicy.SKIP, TiePolicy.LOWEST_ID]
    )
    @pytest.mark.parametrize("threshold", [1, 2, 3])
    def test_mutual_best_matches_dict_policy(
        self, pa_pair, pa_seeds, threshold, tie_policy
    ):
        scores = _scores_fixture(pa_pair, pa_seeds)
        expected = select_mutual_best(scores.to_dict(), threshold, tie_policy)
        left, right, _cands = select_mutual_best_arrays(
            scores, threshold, tie_policy
        )
        assert scores.index.export_links(left, right) == expected

    def test_mutual_best_dispatch_on_array_scores(self, pa_pair, pa_seeds):
        """policy.select_mutual_best accepts the flat table directly."""
        scores = _scores_fixture(pa_pair, pa_seeds)
        assert select_mutual_best(scores, 2) == select_mutual_best(
            scores.to_dict(), 2
        )

    @pytest.mark.parametrize("threshold", [1, 2, 3])
    def test_greedy_matches_dict_selector(self, pa_pair, pa_seeds, threshold):
        scores = _scores_fixture(pa_pair, pa_seeds)
        expected = select_greedy_top_score(scores.to_dict(), threshold)
        left, right = select_greedy_arrays(scores, threshold)
        assert scores.index.export_links(left, right) == expected
        # ... and via the dispatching selector entry point.
        assert select_greedy_top_score(scores, threshold) == expected

    def test_skip_drops_tied_groups(self):
        g1 = Graph.from_edges([(0, 1), (0, 2), (3, 1), (3, 2)])
        g2 = g1.copy()
        index = GraphPairIndex(g1, g2)
        # candidate 0 ties between right 0 and right 3
        scores = ArrayScores(
            index,
            left=np.array([0, 0], dtype=np.int64),
            right=np.array([0, 3], dtype=np.int64),
            score=np.array([2, 2], dtype=np.int64),
        )
        left, right, _ = select_mutual_best_arrays(scores, 1, TiePolicy.SKIP)
        assert len(left) == 0
        left, right, _ = select_mutual_best_arrays(
            scores, 1, TiePolicy.LOWEST_ID
        )
        assert index.export_links(left, right) == {0: 0}

    def test_empty_scores(self, pa_pair):
        index = GraphPairIndex(pa_pair.g1, pa_pair.g2)
        empty = ArrayScores(
            index,
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
        left, right, cands = select_mutual_best_arrays(empty, 1)
        assert len(left) == 0 and cands == 0
        left, right = select_greedy_arrays(empty, 1)
        assert len(left) == 0

    def test_total_score_and_num_pairs(self, pa_pair, pa_seeds):
        scores = _scores_fixture(pa_pair, pa_seeds)
        assert scores.num_pairs == len(scores.score)
        assert scores.total_score() == int(scores.score.sum())


def canonical_table(scores: ArrayScores):
    """(packed key, count) arrays sorted by key — order-free equality."""
    packed = scores.left * scores.index.n2 + scores.right
    order = np.argsort(packed)
    return packed[order], scores.score[order]


class TestMergeScoreTables:
    def test_merge_of_split_equals_whole(self, pa_pair, pa_seeds):
        index = GraphPairIndex(pa_pair.g1, pa_pair.g2)
        link_l, link_r = index.intern_links(pa_seeds)
        elig1 = np.ones(index.n1, dtype=bool)
        elig2 = np.ones(index.n2, dtype=bool)
        whole, emitted = count_witnesses(index, link_l, link_r, elig1, elig2)
        half = len(link_l) // 2
        parts = []
        for sl in (slice(None, half), slice(half, None)):
            scores, part_emitted = count_witnesses(
                index, link_l[sl], link_r[sl], elig1, elig2
            )
            parts.append(
                (scores.left, scores.right, scores.score, part_emitted)
            )
        merged, merged_emitted = kernels.merge_score_tables(index, parts)
        assert merged_emitted == emitted
        wk, wc = canonical_table(whole)
        mk, mc = canonical_table(merged)
        assert np.array_equal(wk, mk)
        assert np.array_equal(wc, mc)

    def test_merge_is_canonically_sorted(self, pa_pair, pa_seeds):
        index = GraphPairIndex(pa_pair.g1, pa_pair.g2)
        link_l, link_r = index.intern_links(pa_seeds)
        elig = np.ones(index.n1, dtype=bool), np.ones(index.n2, dtype=bool)
        scores, emitted = count_witnesses(
            index, link_l, link_r, elig[0], elig[1]
        )
        part = (scores.left, scores.right, scores.score, emitted)
        merged, _ = kernels.merge_score_tables(index, [part, part])
        packed = merged.left * index.n2 + merged.right
        assert (np.diff(packed) > 0).all()  # sorted, unique
        assert np.array_equal(merged.score, 2 * canonical_table(scores)[1])

    def test_empty_parts(self, pa_pair):
        index = GraphPairIndex(pa_pair.g1, pa_pair.g2)
        merged, emitted = kernels.merge_score_tables(index, [])
        assert merged.num_pairs == 0 and emitted == 0


class TestCountWitnessesBlocked:
    def _round(self, pa_pair, pa_seeds):
        index = GraphPairIndex(pa_pair.g1, pa_pair.g2)
        link_l, link_r = index.intern_links(pa_seeds)
        linked1 = np.zeros(index.n1, dtype=bool)
        linked2 = np.zeros(index.n2, dtype=bool)
        linked1[link_l] = True
        linked2[link_r] = True
        floor1, floor2 = index.eligibility(2)
        return (
            index, link_l, link_r, ~linked1 & floor1, ~linked2 & floor2,
        )

    def test_no_budget_passthrough(self, pa_pair, pa_seeds):
        index, ll, lr, e1, e2 = self._round(pa_pair, pa_seeds)
        mono, em = count_witnesses(index, ll, lr, e1, e2)
        blocked, eb = kernels.count_witnesses_blocked(
            index, ll, lr, e1, e2, None
        )
        assert em == eb
        assert np.array_equal(blocked.left, mono.left)
        assert np.array_equal(blocked.score, mono.score)

    def test_forced_multi_block_identical(self, pa_pair, pa_seeds):
        from unittest import mock

        import repro.core.shards as shards

        index, ll, lr, e1, e2 = self._round(pa_pair, pa_seeds)
        mono, em = count_witnesses(index, ll, lr, e1, e2)
        with mock.patch.object(shards, "WITNESS_PAIR_BYTES", 1 << 22):
            plan = shards.plan_witness_blocks(index, ll, lr, 1)
            blocked, eb = kernels.count_witnesses_blocked(
                index, ll, lr, e1, e2, 1
            )
        assert plan.num_blocks > 1
        assert em == eb
        mk, mc = canonical_table(mono)
        bk, bc = canonical_table(blocked)
        assert np.array_equal(mk, bk)
        assert np.array_equal(mc, bc)

    @pytest.mark.parametrize("use_sparse", SPARSE_MODES)
    def test_both_join_paths_identical(self, pa_pair, pa_seeds, use_sparse):
        from unittest import mock

        import repro.core.shards as shards

        index, ll, lr, e1, e2 = self._round(pa_pair, pa_seeds)
        mono, _ = count_witnesses(index, ll, lr, e1, e2, use_sparse=use_sparse)
        with mock.patch.object(shards, "WITNESS_PAIR_BYTES", 1 << 21):
            blocked, _ = kernels.count_witnesses_blocked(
                index, ll, lr, e1, e2, 1, use_sparse=use_sparse
            )
        mk, mc = canonical_table(mono)
        bk, bc = canonical_table(blocked)
        assert np.array_equal(mk, bk)
        assert np.array_equal(mc, bc)

    def test_counter_hook_receives_blocks(self, pa_pair, pa_seeds):
        from unittest import mock

        import repro.core.shards as shards

        index, ll, lr, e1, e2 = self._round(pa_pair, pa_seeds)
        calls = []

        def counter(link_l, link_r, elig1, elig2):
            calls.append(len(link_l))
            return count_witnesses(index, link_l, link_r, elig1, elig2)

        with mock.patch.object(shards, "WITNESS_PAIR_BYTES", 1 << 22):
            blocked, _ = kernels.count_witnesses_blocked(
                index, ll, lr, e1, e2, 1, counter=counter
            )
        assert len(calls) > 1
        assert sum(calls) == len(ll)
        mono, _ = count_witnesses(index, ll, lr, e1, e2)
        mk, mc = canonical_table(mono)
        bk, bc = canonical_table(blocked)
        assert np.array_equal(mk, bk)
        assert np.array_equal(mc, bc)

    def test_empty_links(self, pa_pair):
        index = GraphPairIndex(pa_pair.g1, pa_pair.g2)
        empty = np.empty(0, dtype=np.int64)
        scores, emitted = kernels.count_witnesses_blocked(
            index,
            empty,
            empty,
            np.ones(index.n1, dtype=bool),
            np.ones(index.n2, dtype=bool),
            4,
        )
        assert emitted == 0 and scores.num_pairs == 0


class TestUint32Compaction:
    def test_pair_index_compacts_indices(self, pa_pair):
        index = GraphPairIndex(pa_pair.g1, pa_pair.g2)
        assert index.csr1.indices.dtype == np.uint32
        assert index.csr2.indices.dtype == np.uint32
        assert index.csr1.indptr.dtype == np.int64

    def test_compaction_preserves_adjacency(self, pa_pair):
        from repro.graphs.csr import CSRGraph

        wide = CSRGraph(pa_pair.g1)
        index = GraphPairIndex(pa_pair.g1, pa_pair.g2)
        # Same node order => same adjacency content, narrower dtype.
        order = {n: i for i, n in enumerate(index.csr1.node_ids)}
        for node in list(pa_pair.g1.nodes())[:20]:
            dense = index.csr1.dense_id(node)
            got = sorted(
                index.csr1.node_ids[v]
                for v in index.csr1.neighbors(dense).tolist()
            )
            expected = sorted(pa_pair.g1.neighbors(node))
            assert got == expected
        assert order  # compaction never drops nodes

    def test_compact_is_idempotent(self, pa_pair):
        from repro.graphs.pair_index import compact_csr_indices

        index = GraphPairIndex(pa_pair.g1, pa_pair.g2)
        assert compact_csr_indices(index.csr1) is False  # already done


class TestPackedKeyWidth:
    def test_no_wraparound_past_uint32_with_compacted_indices(self):
        """Packed keys must go through int64 when n1*n2 exceeds int32.

        The compacted interning gathers uint32 neighbor ids; on
        numpy 1.x value-based casting a uint32 * int64-scalar product
        stays uint32, so without an explicit upcast the packed key
        would wrap at 2**32 and collide distinct candidate pairs.
        Faking a large id space over a tiny adjacency exercises the
        wide branch directly.
        """
        from types import SimpleNamespace

        n = np.int64(1) << 21  # n1 * n2 == 2**42 >> int32 range
        # One link (0, 0); candidate neighbors near the top of the id
        # space so packed keys exceed 2**32.
        hi = int(n - 1)
        indptr = np.array([0, 2], dtype=np.int64)
        indices = np.array([hi - 1, hi], dtype=np.uint32)
        csr = SimpleNamespace(indptr=indptr, indices=indices)
        index = SimpleNamespace(csr1=csr, csr2=csr, n1=int(n), n2=int(n))
        eligible = np.zeros(int(n), dtype=bool)
        eligible[[hi - 1, hi]] = True
        link = np.zeros(1, dtype=np.int64)
        scores, emitted = count_witnesses(
            index, link, link, eligible, eligible, use_sparse=False
        )
        assert emitted == 4
        got = sorted(zip(scores.left.tolist(), scores.right.tolist()))
        assert got == [
            (hi - 1, hi - 1), (hi - 1, hi), (hi, hi - 1), (hi, hi),
        ]
        assert scores.score.tolist() == [1, 1, 1, 1]

    @staticmethod
    def _boundary_index(n1: int, n2: int):
        """A fake two-node-per-side index over an (n1, n2) id space.

        One link (0, 0); each side's node 0 is adjacent to the two
        top-of-range ids, so every packed candidate key lands next to
        ``n1 * n2`` — right where a narrow dtype would wrap.  The CSR is
        full-length and symmetric (0 <-> {n-2, n-1} both ways), as a real
        undirected ``GraphPairIndex`` would produce — the row-major
        native join walks every row of ``indptr`` and visits candidates
        through their own neighbor lists.
        """
        from types import SimpleNamespace

        def side(n):
            indptr = np.full(n + 1, 2, dtype=np.int64)
            indptr[0] = 0
            indptr[n - 1] = 3
            indptr[n] = 4
            return SimpleNamespace(
                indptr=indptr,
                indices=np.array([n - 2, n - 1, 0, 0], dtype=np.uint32),
            )

        index = SimpleNamespace(csr1=side(n1), csr2=side(n2), n1=n1, n2=n2)
        elig1 = np.zeros(n1, dtype=bool)
        elig1[[n1 - 2, n1 - 1]] = True
        elig2 = np.zeros(n2, dtype=bool)
        elig2[[n2 - 2, n2 - 1]] = True
        link = np.zeros(1, dtype=np.int64)
        return index, link, elig1, elig2

    #: (n1, n2) with n1*n2 straddling 2**31: one just under the int32
    #: packing limit, one at it, one just past — the promotion boundary.
    BOUNDARY_SHAPES = [
        (46340, 46340),            # 2_147_395_600 <  2**31 - 1: int32
        (46341, 46341),            # 2_147_488_281 >  2**31 - 1: int64
        (2**16, 2**15),            # == 2**31 exactly: int64 branch
    ]

    @pytest.mark.parametrize("n1,n2", BOUNDARY_SHAPES)
    def test_promotion_boundary_straddling_2_31(self, n1, n2):
        """Identical tables on either side of the int32→int64 switch."""
        index, link, elig1, elig2 = self._boundary_index(n1, n2)
        scores, emitted = count_witnesses(
            index, link, link, elig1, elig2, use_sparse=False
        )
        expected = sorted(
            (l, r)
            for l in (n1 - 2, n1 - 1)
            for r in (n2 - 2, n2 - 1)
        )
        assert emitted == len(expected)
        got = sorted(zip(scores.left.tolist(), scores.right.tolist()))
        assert got == expected
        assert scores.score.tolist() == [1] * len(expected)
        # Packed keys reconstruct exactly — no wraparound collisions.
        packed = scores.left * np.int64(n2) + scores.right
        assert packed.max() == np.int64(expected[-1][0]) * n2 + expected[-1][1]

    @pytest.mark.parametrize("n1,n2", BOUNDARY_SHAPES)
    def test_promotion_boundary_native_matches(self, n1, n2):
        """The C join packs in int64 throughout; same table either side."""
        from repro.core.native import load_native_library

        nk = load_native_library(warn=False)
        if nk is None:
            pytest.skip("no C toolchain in this environment")
        index, link, elig1, elig2 = self._boundary_index(n1, n2)
        ref, ref_emitted = count_witnesses(
            index, link, link, elig1, elig2, use_sparse=False
        )
        nat, nat_emitted = count_witnesses(
            index, link, link, elig1, elig2, native=nk
        )
        assert nat_emitted == ref_emitted
        assert nat.left.tolist() == ref.left.tolist()
        assert nat.right.tolist() == ref.right.tolist()
        assert nat.score.tolist() == ref.score.tolist()
