"""Unit tests for the numpy array kernels behind ``backend="csr"``."""

import numpy as np
import pytest

from repro.core import kernels
from repro.core.config import TiePolicy
from repro.core.kernels import (
    ArrayScores,
    count_witnesses,
    segmented_gather,
    select_greedy_arrays,
    select_mutual_best_arrays,
)
from repro.core.policy import select_mutual_best
from repro.core.scoring import (
    count_similarity_witnesses,
    count_similarity_witnesses_arrays,
)
from repro.core.selectors import select_greedy_top_score
from repro.graphs.graph import Graph
from repro.graphs.pair_index import GraphPairIndex

HAS_SCIPY = kernels._sparse is not None

SPARSE_MODES = [False] + ([True] if HAS_SCIPY else [])


def as_dict(scores: ArrayScores) -> dict:
    return {v1: dict(row) for v1, row in scores.to_dict().items()}


def reference_dict(scores: dict) -> dict:
    return {v1: dict(row) for v1, row in scores.items()}


class TestSegmentedGather:
    def test_concatenates_slices(self):
        g = Graph.from_edges([(0, 1), (0, 2), (1, 2), (2, 3)])
        index = GraphPairIndex(g, g.copy())
        csr = index.csr1
        targets = np.array([2, 0], dtype=np.int64)
        values, segments = segmented_gather(
            csr.indptr, csr.indices, targets
        )
        assert values.tolist() == (
            csr.neighbors(2).tolist() + csr.neighbors(0).tolist()
        )
        assert segments.tolist() == [0] * csr.degree(2) + [1] * csr.degree(0)

    def test_empty_targets(self):
        g = Graph.from_edges([(0, 1)])
        index = GraphPairIndex(g, g.copy())
        values, segments = segmented_gather(
            index.csr1.indptr,
            index.csr1.indices,
            np.empty(0, dtype=np.int64),
        )
        assert values.size == 0 and segments.size == 0


class TestCountWitnesses:
    @pytest.mark.parametrize("use_sparse", SPARSE_MODES)
    def test_matches_dict_kernel(self, pa_pair, pa_seeds, use_sparse):
        index = GraphPairIndex(pa_pair.g1, pa_pair.g2)
        for min_degree in (1, 2, 4):
            expected, emitted = count_similarity_witnesses(
                pa_pair.g1, pa_pair.g2, pa_seeds, min_degree
            )
            link_l, link_r = index.intern_links(pa_seeds)
            linked1 = np.zeros(index.n1, dtype=bool)
            linked2 = np.zeros(index.n2, dtype=bool)
            linked1[link_l] = True
            linked2[link_r] = True
            floor1, floor2 = index.eligibility(min_degree)
            scores, got_emitted = count_witnesses(
                index,
                link_l,
                link_r,
                ~linked1 & floor1,
                ~linked2 & floor2,
                use_sparse=use_sparse,
            )
            assert got_emitted == emitted
            assert as_dict(scores) == reference_dict(expected)

    def test_scoring_bridge_matches(self, pa_pair, pa_seeds):
        index = GraphPairIndex(pa_pair.g1, pa_pair.g2)
        expected, emitted = count_similarity_witnesses(
            pa_pair.g1, pa_pair.g2, pa_seeds, 2
        )
        scores, got = count_similarity_witnesses_arrays(
            index, pa_seeds, min_degree=2
        )
        assert got == emitted
        assert as_dict(scores) == reference_dict(expected)

    def test_bridge_tolerates_missing_right_endpoint(self, pa_pair):
        """Parity with the dict kernel's `if not g2_has(u2)` guard."""
        links = dict(list(pa_pair.identity.items())[:30])
        broken_left = next(iter(links))
        links[broken_left] = "not-in-g2"
        expected, emitted = count_similarity_witnesses(
            pa_pair.g1, pa_pair.g2, links, 2
        )
        index = GraphPairIndex(pa_pair.g1, pa_pair.g2)
        scores, got = count_similarity_witnesses_arrays(
            index, links, min_degree=2
        )
        assert got == emitted
        assert as_dict(scores) == reference_dict(expected)

    def test_sparse_and_numpy_paths_identical(self, pa_pair, pa_seeds):
        if not HAS_SCIPY:
            pytest.skip("scipy not installed")
        index = GraphPairIndex(pa_pair.g1, pa_pair.g2)
        link_l, link_r = index.intern_links(pa_seeds)
        elig1 = np.ones(index.n1, dtype=bool)
        elig2 = np.ones(index.n2, dtype=bool)
        a, ea = count_witnesses(
            index, link_l, link_r, elig1, elig2, use_sparse=True
        )
        b, eb = count_witnesses(
            index, link_l, link_r, elig1, elig2, use_sparse=False
        )
        assert ea == eb
        assert as_dict(a) == as_dict(b)

    def test_no_links(self, pa_pair):
        index = GraphPairIndex(pa_pair.g1, pa_pair.g2)
        scores, emitted = count_witnesses(
            index,
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.ones(index.n1, dtype=bool),
            np.ones(index.n2, dtype=bool),
        )
        assert emitted == 0 and scores.num_pairs == 0
        assert scores.to_dict() == {}

    def test_all_ineligible(self, pa_pair, pa_seeds):
        index = GraphPairIndex(pa_pair.g1, pa_pair.g2)
        link_l, link_r = index.intern_links(pa_seeds)
        scores, emitted = count_witnesses(
            index,
            link_l,
            link_r,
            np.zeros(index.n1, dtype=bool),
            np.zeros(index.n2, dtype=bool),
        )
        assert emitted == 0 and scores.num_pairs == 0

    def test_use_sparse_without_scipy_raises(
        self, pa_pair, pa_seeds, monkeypatch
    ):
        monkeypatch.setattr(kernels, "_sparse", None)
        index = GraphPairIndex(pa_pair.g1, pa_pair.g2)
        link_l, link_r = index.intern_links(pa_seeds)
        with pytest.raises(RuntimeError):
            count_witnesses(
                index,
                link_l,
                link_r,
                np.ones(index.n1, dtype=bool),
                np.ones(index.n2, dtype=bool),
                use_sparse=True,
            )


def _scores_fixture(pa_pair, pa_seeds):
    index = GraphPairIndex(pa_pair.g1, pa_pair.g2)
    scores, _ = count_similarity_witnesses_arrays(index, pa_seeds)
    return scores


class TestArraySelection:
    @pytest.mark.parametrize(
        "tie_policy", [TiePolicy.SKIP, TiePolicy.LOWEST_ID]
    )
    @pytest.mark.parametrize("threshold", [1, 2, 3])
    def test_mutual_best_matches_dict_policy(
        self, pa_pair, pa_seeds, threshold, tie_policy
    ):
        scores = _scores_fixture(pa_pair, pa_seeds)
        expected = select_mutual_best(
            scores.to_dict(), threshold, tie_policy
        )
        left, right, _cands = select_mutual_best_arrays(
            scores, threshold, tie_policy
        )
        assert scores.index.export_links(left, right) == expected

    def test_mutual_best_dispatch_on_array_scores(
        self, pa_pair, pa_seeds
    ):
        """policy.select_mutual_best accepts the flat table directly."""
        scores = _scores_fixture(pa_pair, pa_seeds)
        assert select_mutual_best(scores, 2) == select_mutual_best(
            scores.to_dict(), 2
        )

    @pytest.mark.parametrize("threshold", [1, 2, 3])
    def test_greedy_matches_dict_selector(
        self, pa_pair, pa_seeds, threshold
    ):
        scores = _scores_fixture(pa_pair, pa_seeds)
        expected = select_greedy_top_score(scores.to_dict(), threshold)
        left, right = select_greedy_arrays(scores, threshold)
        assert scores.index.export_links(left, right) == expected
        # ... and via the dispatching selector entry point.
        assert select_greedy_top_score(scores, threshold) == expected

    def test_skip_drops_tied_groups(self):
        g1 = Graph.from_edges([(0, 1), (0, 2), (3, 1), (3, 2)])
        g2 = g1.copy()
        index = GraphPairIndex(g1, g2)
        # candidate 0 ties between right 0 and right 3
        scores = ArrayScores(
            index,
            left=np.array([0, 0], dtype=np.int64),
            right=np.array([0, 3], dtype=np.int64),
            score=np.array([2, 2], dtype=np.int64),
        )
        left, right, _ = select_mutual_best_arrays(
            scores, 1, TiePolicy.SKIP
        )
        assert len(left) == 0
        left, right, _ = select_mutual_best_arrays(
            scores, 1, TiePolicy.LOWEST_ID
        )
        assert index.export_links(left, right) == {0: 0}

    def test_empty_scores(self, pa_pair):
        index = GraphPairIndex(pa_pair.g1, pa_pair.g2)
        empty = ArrayScores(
            index,
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
        left, right, cands = select_mutual_best_arrays(empty, 1)
        assert len(left) == 0 and cands == 0
        left, right = select_greedy_arrays(empty, 1)
        assert len(left) == 0

    def test_total_score_and_num_pairs(self, pa_pair, pa_seeds):
        scores = _scores_fixture(pa_pair, pa_seeds)
        assert scores.num_pairs == len(scores.score)
        assert scores.total_score() == int(scores.score.sum())
