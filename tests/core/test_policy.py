"""Unit tests for the mutual-best selection rule."""

from repro.core.config import TiePolicy
from repro.core.policy import select_mutual_best


class TestSelectMutualBest:
    def test_simple_mutual_best(self):
        scores = {1: {10: 5, 11: 2}, 2: {11: 4}}
        out = select_mutual_best(scores, threshold=2)
        assert out == {1: 10, 2: 11}

    def test_threshold_filters(self):
        scores = {1: {10: 1}}
        assert select_mutual_best(scores, threshold=2) == {}

    def test_left_tie_skipped(self):
        scores = {1: {10: 3, 11: 3}}
        assert select_mutual_best(scores, threshold=2) == {}

    def test_left_tie_lowest_id(self):
        scores = {1: {10: 3, 11: 3}}
        out = select_mutual_best(
            scores, threshold=2, tie_policy=TiePolicy.LOWEST_ID
        )
        assert out == {1: 10}

    def test_right_contention_resolved_by_score(self):
        # Both 1 and 2 prefer 10, but 1 scores higher: 10 goes to 1.
        # Node 2 gets nothing this round (no fallback to its runner-up —
        # the paper's rule only links a node to its own best pair).
        scores = {1: {10: 5}, 2: {10: 3, 11: 2}}
        out = select_mutual_best(scores, threshold=2)
        assert out[1] == 10
        assert 2 not in out

    def test_right_tie_skipped(self):
        scores = {1: {10: 3}, 2: {10: 3}}
        assert select_mutual_best(scores, threshold=2) == {}

    def test_right_tie_lowest_id(self):
        scores = {1: {10: 3}, 2: {10: 3}}
        out = select_mutual_best(
            scores, threshold=2, tie_policy=TiePolicy.LOWEST_ID
        )
        assert out == {1: 10}

    def test_output_one_to_one(self):
        scores = {
            1: {10: 5, 11: 4},
            2: {10: 4, 11: 5},
            3: {10: 3, 11: 3, 12: 6},
        }
        out = select_mutual_best(scores, threshold=1)
        assert len(set(out.values())) == len(out)

    def test_empty_scores(self):
        assert select_mutual_best({}, threshold=1) == {}

    def test_non_mutual_pair_rejected(self):
        # 1's best is 10; but 10's best is 2 -> no link for 1
        scores = {1: {10: 3}, 2: {10: 7, 11: 1}}
        out = select_mutual_best(scores, threshold=1)
        assert 1 not in out
        assert out[2] == 10

    def test_higher_threshold_subset(self):
        scores = {
            1: {10: 5, 11: 2},
            2: {11: 3},
            3: {12: 2},
        }
        low = select_mutual_best(scores, threshold=2)
        high = select_mutual_best(scores, threshold=4)
        assert set(high.items()) <= set(low.items())
