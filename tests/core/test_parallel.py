"""Unit tests for the shared-memory witness pool and its fallback."""

import numpy as np
import pytest

from repro.core import kernels, parallel
from repro.core.config import MatcherConfig
from repro.core.matcher import UserMatching
from repro.core.parallel import (
    ParallelFallbackWarning,
    WitnessPool,
    merge_shard_scores,
    open_witness_pool,
)
from repro.generators.preferential_attachment import (
    preferential_attachment_graph,
)
from repro.graphs.pair_index import GraphPairIndex
from repro.sampling.edge_sampling import independent_copies
from repro.seeds.generators import sample_seeds

_EMPTY = np.empty(0, dtype=np.int64)


def build_round(n=300, m=5, min_degree=2):
    """An interned workload plus one round's kernel inputs."""
    g = preferential_attachment_graph(n, m, seed=1)
    pair = independent_copies(g, 0.5, seed=2)
    seeds = sample_seeds(pair, 0.1, seed=3)
    index = GraphPairIndex(pair.g1, pair.g2)
    link_l, link_r = index.intern_links(seeds)
    linked1 = np.zeros(index.n1, dtype=bool)
    linked2 = np.zeros(index.n2, dtype=bool)
    linked1[link_l] = True
    linked2[link_r] = True
    floor1, floor2 = index.eligibility(min_degree)
    return index, link_l, link_r, ~linked1 & floor1, ~linked2 & floor2


def as_table(scores):
    return sorted(
        zip(
            scores.left.tolist(),
            scores.right.tolist(),
            scores.score.tolist(),
        )
    )


class TestWitnessPool:
    def test_pool_matches_serial_kernel(self):
        index, link_l, link_r, e1, e2 = build_round()
        serial, emitted_s = kernels.count_witnesses(
            index, link_l, link_r, e1, e2
        )
        with WitnessPool(index, workers=3) as pool:
            pooled, emitted_p = pool.count_witnesses(link_l, link_r, e1, e2)
        assert emitted_p == emitted_s
        assert as_table(pooled) == as_table(serial)

    def test_merged_table_is_canonically_sorted(self):
        index, link_l, link_r, e1, e2 = build_round()
        with WitnessPool(index, workers=2) as pool:
            scores, _ = pool.count_witnesses(link_l, link_r, e1, e2)
        packed = scores.left * index.n2 + scores.right
        assert (np.diff(packed) > 0).all()

    def test_single_link_round_runs_inline(self):
        """One link -> one shard -> serial shortcut, same result."""
        index, link_l, link_r, e1, e2 = build_round()
        with WitnessPool(index, workers=3) as pool:
            pooled, emitted = pool.count_witnesses(
                link_l[:1], link_r[:1], e1, e2
            )
        serial, emitted_s = kernels.count_witnesses(
            index, link_l[:1], link_r[:1], e1, e2
        )
        assert emitted == emitted_s
        assert as_table(pooled) == as_table(serial)

    def test_empty_link_round(self):
        index, _l, _r, e1, e2 = build_round()
        with WitnessPool(index, workers=2) as pool:
            scores, emitted = pool.count_witnesses(_EMPTY, _EMPTY, e1, e2)
        assert emitted == 0
        assert scores.num_pairs == 0

    def test_close_is_idempotent_and_blocks_reuse(self):
        index, link_l, link_r, e1, e2 = build_round(n=80)
        pool = WitnessPool(index, workers=2)
        pool.close()
        pool.close()
        with pytest.raises(RuntimeError):
            pool.count_witnesses(link_l, link_r, e1, e2)

    def test_workers_below_two_rejected(self):
        index, *_ = build_round(n=60)
        with pytest.raises(ValueError):
            WitnessPool(index, workers=1)

    def test_pool_reused_across_rounds(self):
        """Growing link sets across rounds, one pool (the matcher's use)."""
        index, link_l, link_r, e1, e2 = build_round()
        with WitnessPool(index, workers=2) as pool:
            for k in (len(link_l) // 2, len(link_l)):
                serial, _ = kernels.count_witnesses(
                    index, link_l[:k], link_r[:k], e1, e2
                )
                pooled, _ = pool.count_witnesses(
                    link_l[:k], link_r[:k], e1, e2
                )
                assert as_table(pooled) == as_table(serial)


class TestMergeShardScores:
    def test_overlapping_pairs_are_summed(self):
        index, *_ = build_round(n=60)
        parts = [
            (
                np.array([0, 1]),
                np.array([0, 1]),
                np.array([2, 3]),
                5,
            ),
            (
                np.array([1, 2]),
                np.array([1, 0]),
                np.array([4, 1]),
                5,
            ),
        ]
        scores, emitted = merge_shard_scores(index, parts)
        assert emitted == 10
        assert as_table(scores) == [(0, 0, 2), (1, 1, 7), (2, 0, 1)]

    def test_merge_order_invariant(self):
        index, *_ = build_round(n=60)
        parts = [
            (np.array([3]), np.array([4]), np.array([2]), 2),
            (np.array([1]), np.array([1]), np.array([1]), 1),
        ]
        a, _ = merge_shard_scores(index, parts)
        b, _ = merge_shard_scores(index, parts[::-1])
        assert as_table(a) == as_table(b)
        assert (a.left == b.left).all()  # canonical row order too

    def test_all_empty_parts(self):
        index, *_ = build_round(n=60)
        parts = [(_EMPTY, _EMPTY, _EMPTY, 0)] * 3
        scores, emitted = merge_shard_scores(index, parts)
        assert emitted == 0
        assert scores.num_pairs == 0


class TestGracefulFallback:
    def test_workers_one_is_silently_serial(self):
        index, *_ = build_round(n=60)
        assert open_witness_pool(index, 1) is None
        assert open_witness_pool(index, 0) is None

    def test_missing_shared_memory_warns_and_falls_back(self, monkeypatch):
        index, *_ = build_round(n=60)
        monkeypatch.setattr(parallel, "_shared_memory", None)
        with pytest.warns(ParallelFallbackWarning):
            assert open_witness_pool(index, 3) is None

    def test_pool_setup_failure_warns_and_falls_back(self, monkeypatch):
        index, *_ = build_round(n=60)

        class Broken:
            def SharedMemory(self, *args, **kwargs):
                raise OSError("no /dev/shm in this sandbox")

        monkeypatch.setattr(parallel, "_shared_memory", Broken())
        with pytest.warns(ParallelFallbackWarning, match="serially"):
            assert open_witness_pool(index, 3) is None

    def test_matcher_still_matches_under_fallback(self, monkeypatch):
        """End to end: workers>1 without shared memory = serial links."""
        g = preferential_attachment_graph(200, 5, seed=1)
        pair = independent_copies(g, 0.6, seed=2)
        seeds = sample_seeds(pair, 0.1, seed=3)
        reference = UserMatching(
            MatcherConfig(backend="csr", workers=1)
        ).run(pair.g1, pair.g2, seeds)
        monkeypatch.setattr(parallel, "_shared_memory", None)
        with pytest.warns(ParallelFallbackWarning):
            degraded = UserMatching(
                MatcherConfig(backend="csr", workers=4)
            ).run(pair.g1, pair.g2, seeds)
        assert degraded.links == reference.links
