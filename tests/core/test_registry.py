"""Registry tests + the shared protocol-conformance suite.

Every matcher registered in :mod:`repro.registry` must honor the
:class:`~repro.core.protocol.Matcher` contract: accept
``(g1, g2, seeds)`` plus a ``progress`` keyword and return a
:class:`~repro.core.result.MatchingResult` whose links extend the seeds.
The suite is parametrized over the registry, so adding a matcher
automatically puts it under contract.
"""

import pytest

from repro.core.protocol import Matcher, ProgressEvent
from repro.core.result import MatchingResult
from repro.errors import MatcherRegistryError
from repro.generators.preferential_attachment import (
    preferential_attachment_graph,
)
from repro.registry import (
    _REGISTRY,
    available_matchers,
    get_entry,
    get_matcher,
    matcher_names,
    register_matcher,
)
from repro.sampling.edge_sampling import independent_copies
from repro.seeds.generators import sample_seeds


@pytest.fixture(scope="module")
def workload():
    graph = preferential_attachment_graph(150, 4, seed=11)
    pair = independent_copies(graph, s1=0.7, seed=12)
    seeds = sample_seeds(pair, 0.15, seed=13)
    return pair, seeds


class TestProtocolConformance:
    @pytest.mark.parametrize("name", matcher_names())
    def test_run_returns_matching_result_extending_seeds(self, name, workload):
        pair, seeds = workload
        matcher = get_matcher(name)
        result = matcher.run(pair.g1, pair.g2, seeds)
        assert isinstance(result, MatchingResult)
        assert set(seeds.items()) <= set(result.links.items())
        assert result.seeds == seeds

    @pytest.mark.parametrize("name", matcher_names())
    def test_satisfies_runtime_protocol(self, name):
        assert isinstance(get_matcher(name), Matcher)

    @pytest.mark.parametrize("name", matcher_names())
    def test_progress_callback_receives_events(self, name, workload):
        pair, seeds = workload
        events = []
        get_matcher(name).run(pair.g1, pair.g2, seeds, progress=events.append)
        assert events, f"{name} emitted no progress events"
        for event in events:
            assert isinstance(event, ProgressEvent)
            assert event.step >= 1
            assert event.links_total >= len(seeds)
            assert event.elapsed >= 0.0

    @pytest.mark.parametrize("name", matcher_names())
    def test_output_links_are_one_to_one(self, name, workload):
        pair, seeds = workload
        result = get_matcher(name).run(pair.g1, pair.g2, seeds)
        assert len(set(result.links.values())) == len(result.links)

    @pytest.mark.parametrize("name", matcher_names())
    def test_registered_class_carries_its_name(self, name):
        assert get_entry(name).cls.matcher_name == name


class TestRegistryLookup:
    def test_expected_matchers_present(self):
        assert {
            "user-matching",
            "mapreduce-user-matching",
            "common-neighbors",
            "narayanan-shmatikov",
            "degree-sequence",
            "structural-features",
            "reconciler",
        } <= set(matcher_names())

    def test_unknown_name_raises_with_known_names(self):
        with pytest.raises(MatcherRegistryError, match="user-matching"):
            get_matcher("definitely-not-registered")

    def test_get_entry_unknown_name(self):
        with pytest.raises(MatcherRegistryError):
            get_entry("definitely-not-registered")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(MatcherRegistryError, match="already"):

            @register_matcher("user-matching")
            class Imposter:
                def run(self, g1, g2, seeds, *, progress=None):
                    raise NotImplementedError

    def test_registration_and_description_default(self):
        try:

            @register_matcher("test-only-matcher")
            class TestOnly:
                """One-line summary becomes the description.

                Body text must not leak into it.
                """

                def run(self, g1, g2, seeds, *, progress=None):
                    return MatchingResult(links=dict(seeds), seeds=dict(seeds))

            assert "test-only-matcher" in matcher_names()
            assert (
                available_matchers()["test-only-matcher"]
                == "One-line summary becomes the description."
            )
            assert isinstance(get_matcher("test-only-matcher"), TestOnly)
        finally:
            _REGISTRY.pop("test-only-matcher", None)

    def test_config_kwargs_reach_the_matcher(self):
        um = get_matcher("user-matching", threshold=3, iterations=2)
        assert um.config.threshold == 3
        assert um.config.iterations == 2
        cn = get_matcher("common-neighbors", threshold=2)
        assert cn.config.threshold == 2
        mr = get_matcher("mapreduce-user-matching", threshold=4)
        assert mr.config.threshold == 4

    def test_from_params_rejects_config_plus_kwargs(self):
        from repro.core.config import MatcherConfig
        from repro.core.matcher import UserMatching
        from repro.errors import MatcherConfigError

        with pytest.raises(MatcherConfigError):
            UserMatching.from_params(config=MatcherConfig(), threshold=3)


class TestCompareMatchers:
    def test_labels_rows_and_shares_workload(self, workload):
        from repro.evaluation import compare_matchers

        pair, seeds = workload
        trials = compare_matchers(
            pair,
            seeds,
            ["user-matching", "common-neighbors"],
            params={"s": 0.7},
        )
        assert [t.params["matcher"] for t in trials] == [
            "user-matching",
            "common-neighbors",
        ]
        assert all(t.params["s"] == 0.7 for t in trials)

    def test_matcher_label_survives_params_collision(self, workload):
        from repro.evaluation import compare_matchers

        pair, seeds = workload
        trials = compare_matchers(
            pair,
            seeds,
            ["user-matching", "degree-sequence"],
            params={"matcher": "overridden"},
        )
        assert [t.params["matcher"] for t in trials] == [
            "user-matching",
            "degree-sequence",
        ]

    def test_instances_labeled_by_registry_name(self, workload):
        from repro.core.reconciler import Reconciler
        from repro.evaluation import compare_matchers

        pair, seeds = workload
        trials = compare_matchers(pair, seeds, [Reconciler()])
        assert trials[0].params["matcher"] == "reconciler"
