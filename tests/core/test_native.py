"""Unit tests for the compiled kernels behind ``backend="native"``.

Two families live here: bit-exactness of each C kernel against its
numpy twin (witness join across all four index-dtype variants, packed
merge, mutual-best under both tie policies, greedy scan), and the
load/fallback machinery (module-level cache, kill switch, broken
compiler, quiet resolution for workers).  Everything degrades — none of
these tests require a working C toolchain except the ones explicitly
marked ``needs_native``.
"""

import warnings

import numpy as np
import pytest

from repro.core import kernels, native
from repro.core.config import TiePolicy
from repro.core.kernels import (
    ArrayScores,
    ScatterWorkspace,
    count_witnesses,
    count_witnesses_blocked,
    merge_score_tables,
    select_greedy_arrays,
    select_mutual_best_arrays,
)
from repro.core.native import (
    NativeFallbackWarning,
    _reset_native_cache,
    load_native_library,
    native_available,
)
from repro.graphs.pair_index import GraphPairIndex

NATIVE = native_available()

needs_native = pytest.mark.skipif(
    not NATIVE, reason="no C toolchain in this environment"
)


@pytest.fixture
def nk():
    handle = load_native_library(warn=False)
    if handle is None:
        pytest.skip("no C toolchain in this environment")
    return handle


@pytest.fixture
def fresh_cache():
    """Reset the module cache around a test that manipulates loading."""
    _reset_native_cache()
    yield
    _reset_native_cache()


def linked_masks(index, links):
    link_l, link_r = index.intern_links(links)
    linked1 = np.zeros(index.n1, dtype=bool)
    linked2 = np.zeros(index.n2, dtype=bool)
    linked1[link_l] = True
    linked2[link_r] = True
    floor1, floor2 = index.eligibility(2)
    return link_l, link_r, ~linked1 & floor1, ~linked2 & floor2


def table(scores: ArrayScores):
    return (scores.left.tolist(), scores.right.tolist(),
            scores.score.tolist())


def canon(scores: ArrayScores):
    """Order-free table equality (the sparse join emits column-major)."""
    packed = scores.left * scores.index.n2 + scores.right
    order = np.argsort(packed)
    return packed[order].tolist(), scores.score[order].tolist()


def parts_of(*tables):
    return [(t.left, t.right, t.score, 0) for t in tables]


class TestWitnessJoin:
    def _both(self, index, links, native_handle):
        args = linked_masks(index, links)
        ref, ref_emitted = count_witnesses(index, *args)
        numpy_ref, _ = count_witnesses(index, *args, use_sparse=False)
        nat, nat_emitted = count_witnesses(
            index, *args, native=native_handle
        )
        assert nat_emitted == ref_emitted
        assert canon(nat) == canon(ref)
        # The pure-numpy path is row-for-row canonical (ascending packed
        # key), and so is the native export.
        assert table(nat) == table(numpy_ref)
        assert nat.native is native_handle
        return nat

    def test_matches_numpy_on_pa_workload(self, pa_pair, pa_seeds, nk):
        index = GraphPairIndex(pa_pair.g1, pa_pair.g2)
        self._both(index, pa_seeds, nk)

    @pytest.mark.parametrize("wide1", [False, True])
    @pytest.mark.parametrize("wide2", [False, True])
    def test_all_index_dtype_variants(self, pa_pair, pa_seeds, nk,
                                      wide1, wide2):
        """u32/u32, u32/i64, i64/u32 and i64/i64 joins all agree."""
        index = GraphPairIndex(pa_pair.g1, pa_pair.g2)
        if wide1:
            index.csr1.indices = index.csr1.indices.astype(np.int64)
        if wide2:
            index.csr2.indices = index.csr2.indices.astype(np.int64)
        self._both(index, pa_seeds, nk)

    def test_empty_links(self, pa_pair, nk):
        index = GraphPairIndex(pa_pair.g1, pa_pair.g2)
        scores, emitted = count_witnesses(
            index,
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.ones(index.n1, dtype=bool),
            np.ones(index.n2, dtype=bool),
            native=nk,
        )
        assert emitted == 0 and scores.left.size == 0

    def test_all_ineligible(self, pa_pair, pa_seeds, nk):
        index = GraphPairIndex(pa_pair.g1, pa_pair.g2)
        link_l, link_r = index.intern_links(pa_seeds)
        scores, emitted = count_witnesses(
            index,
            link_l,
            link_r,
            np.zeros(index.n1, dtype=bool),
            np.zeros(index.n2, dtype=bool),
            native=nk,
        )
        assert emitted == 0 and scores.left.size == 0

    def test_wide_output_variant_agrees(self, pa_pair, pa_seeds, nk,
                                        monkeypatch):
        """Forcing the _o64 join yields the same table as the _o32.

        The workload's node ids fit int32, so the narrow variant runs
        by default; patching the cutoff to -1 exercises the int64
        output columns that big graphs would select.
        """
        index = GraphPairIndex(pa_pair.g1, pa_pair.g2)
        args = linked_masks(index, pa_seeds)
        narrow, narrow_emitted = count_witnesses(index, *args, native=nk)
        assert narrow.left.dtype == np.int32
        monkeypatch.setattr(native, "_NATIVE_OUT32_MAX", -1)
        wide, wide_emitted = count_witnesses(index, *args, native=nk)
        assert wide.left.dtype == np.int64
        assert wide_emitted == narrow_emitted
        assert table(wide) == table(narrow)

    def test_raw_join_keys_ascending(self, pa_pair, pa_seeds, nk):
        index = GraphPairIndex(pa_pair.g1, pa_pair.g2)
        link_l, link_r, elig1, elig2 = linked_masks(index, pa_seeds)
        left, right, counts, emitted = nk.witness_join(
            index.csr1.indptr,
            index.csr1.indices,
            index.csr2.indptr,
            index.csr2.indices,
            link_l,
            link_r,
            elig1,
            elig2,
            index.n1,
            index.n2,
        )
        keys = left * np.int64(index.n2) + right
        assert np.all(np.diff(keys) > 0)
        assert int(counts.sum()) == emitted


class TestMergePacked:
    def test_matches_numpy_merge(self, pa_pair, pa_seeds, nk):
        index = GraphPairIndex(pa_pair.g1, pa_pair.g2)
        args = linked_masks(index, pa_seeds)
        whole, _ = count_witnesses(index, *args)
        tables = [
            count_witnesses(
                index, args[0][chunk], args[1][chunk], args[2], args[3]
            )[0]
            for chunk in np.array_split(np.arange(args[0].size), 3)
        ]
        ref, _ = merge_score_tables(index, parts_of(*tables))
        nat, _ = merge_score_tables(index, parts_of(*tables), native=nk)
        assert table(nat) == table(ref)
        assert canon(nat) == canon(whole)
        assert nat.native is nk

    def test_disjoint_and_overlapping_keys(self, nk):
        rng = np.random.default_rng(5)
        parts = []
        for _ in range(4):
            keys = np.unique(rng.integers(0, 400, size=60))
            counts = rng.integers(1, 9, size=keys.size)
            parts.append((keys.astype(np.int64), counts.astype(np.int64)))
        keys, counts = nk.merge_packed(parts)
        all_keys = np.concatenate([p[0] for p in parts])
        all_counts = np.concatenate([p[1] for p in parts])
        ref_keys, inv = np.unique(all_keys, return_inverse=True)
        ref_counts = np.bincount(inv, weights=all_counts).astype(np.int64)
        assert keys.tolist() == ref_keys.tolist()
        assert counts.tolist() == ref_counts.tolist()

    def test_empty_parts(self, nk):
        keys, counts = nk.merge_packed([])
        assert keys.size == 0 and counts.size == 0


def _random_scores(pa_pair, pa_seeds, nk):
    index = GraphPairIndex(pa_pair.g1, pa_pair.g2)
    args = linked_masks(index, pa_seeds)
    scores, _ = count_witnesses(index, *args, native=nk)
    return scores


class TestNativeSelection:
    @pytest.mark.parametrize(
        "tie_policy", [TiePolicy.SKIP, TiePolicy.LOWEST_ID]
    )
    @pytest.mark.parametrize("threshold", [1, 2, 3])
    def test_mutual_best_matches_numpy(self, pa_pair, pa_seeds, nk,
                                       tie_policy, threshold):
        scores = _random_scores(pa_pair, pa_seeds, nk)
        plain = ArrayScores(
            scores.index, scores.left, scores.right, scores.score
        )
        ref = select_mutual_best_arrays(plain, threshold, tie_policy)
        nat = select_mutual_best_arrays(scores, threshold, tie_policy)
        assert nat[0].tolist() == ref[0].tolist()
        assert nat[1].tolist() == ref[1].tolist()
        assert nat[2] == ref[2]

    @pytest.mark.parametrize("threshold", [1, 2, 3])
    def test_greedy_matches_numpy(self, pa_pair, pa_seeds, nk, threshold):
        scores = _random_scores(pa_pair, pa_seeds, nk)
        plain = ArrayScores(
            scores.index, scores.left, scores.right, scores.score
        )
        ref = select_greedy_arrays(plain, threshold)
        nat = select_greedy_arrays(scores, threshold)
        assert nat[0].tolist() == ref[0].tolist()
        assert nat[1].tolist() == ref[1].tolist()

    @pytest.mark.parametrize("skip", [True, False])
    def test_mutual_best_randomized(self, nk, skip):
        """Fuzz the raw C entry points against the numpy selection."""
        from types import SimpleNamespace

        rng = np.random.default_rng(17)
        policy = TiePolicy.SKIP if skip else TiePolicy.LOWEST_ID
        for trial in range(25):
            n1 = int(rng.integers(3, 40))
            n2 = int(rng.integers(3, 40))
            size = int(rng.integers(1, 120))
            packed = np.unique(
                rng.integers(0, n1, size=size) * n2
                + rng.integers(0, n2, size=size)
            )
            lt = (packed // n2).astype(np.int64)
            rt = (packed % n2).astype(np.int64)
            sc = rng.integers(1, 6, size=lt.size).astype(np.int64)
            index = SimpleNamespace(n1=n1, n2=n2)
            ref = select_mutual_best_arrays(
                ArrayScores(index, lt, rt, sc), 1, policy
            )
            out_l, out_r = nk.mutual_best(lt, rt, sc, n1, n2, skip)
            assert out_l.tolist() == ref[0].tolist(), trial
            assert out_r.tolist() == ref[1].tolist(), trial
            greedy_ref = select_greedy_arrays(
                ArrayScores(index, lt, rt, sc), 1
            )
            order = np.lexsort((rt, lt, -sc))
            g_l, g_r = nk.greedy_scan(lt[order], rt[order], n1, n2)
            assert g_l.tolist() == greedy_ref[0].tolist(), trial
            assert g_r.tolist() == greedy_ref[1].tolist(), trial


class TestLoadAndFallback:
    def test_available_means_loadable(self):
        if NATIVE:
            assert load_native_library(warn=False) is not None

    @needs_native
    def test_cache_returns_same_handle(self, fresh_cache):
        first = load_native_library(warn=False)
        second = load_native_library(warn=False)
        assert first is second

    def test_kill_switch_warns_once(self, fresh_cache, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        with pytest.warns(NativeFallbackWarning, match="DISABLE"):
            assert load_native_library() is None
        # Cached failure: later quiet resolutions don't warn again.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert load_native_library(warn=False) is None

    def test_kill_switch_quiet_for_workers(self, fresh_cache, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert load_native_library(warn=False) is None

    def test_broken_compiler_falls_back(self, fresh_cache, monkeypatch,
                                        tmp_path):
        monkeypatch.setenv("REPRO_NATIVE_CC", str(tmp_path / "missing-cc"))
        monkeypatch.setenv("REPRO_NATIVE_DIR", str(tmp_path))
        with pytest.warns(NativeFallbackWarning):
            assert load_native_library() is None
        assert not native_available()

    @needs_native
    def test_persistent_build_dir_reused(self, fresh_cache, monkeypatch,
                                         tmp_path):
        monkeypatch.setenv("REPRO_NATIVE_DIR", str(tmp_path))
        handle = load_native_library(warn=False)
        assert handle is not None
        assert handle.lib_path.parent == tmp_path
        _reset_native_cache()
        # Second load with a broken compiler still succeeds: the cached
        # shared object short-circuits the build entirely.
        monkeypatch.setenv("REPRO_NATIVE_CC", str(tmp_path / "missing-cc"))
        again = load_native_library(warn=False)
        assert again is not None and again.lib_path == handle.lib_path


class TestScatterWorkspace:
    def test_for_index_respects_cap(self, pa_pair):
        index = GraphPairIndex(pa_pair.g1, pa_pair.g2)
        ws = ScatterWorkspace.for_index(index)
        assert ws is not None and ws.keyspace == index.n1 * index.n2
        assert ScatterWorkspace.for_index(index, cap=8) is None

    def test_merge_matches_unique_path(self, pa_pair, pa_seeds):
        index = GraphPairIndex(pa_pair.g1, pa_pair.g2)
        args = linked_masks(index, pa_seeds)
        tables = [
            count_witnesses(
                index, args[0][chunk], args[1][chunk], args[2], args[3]
            )[0]
            for chunk in np.array_split(np.arange(args[0].size), 3)
        ]
        ref, _ = merge_score_tables(index, parts_of(*tables))
        ws = ScatterWorkspace.for_index(index)
        got, _ = merge_score_tables(index, parts_of(*tables), workspace=ws)
        assert table(got) == table(ref)

    def test_buffer_reused_and_rezeroed(self, pa_pair, pa_seeds):
        index = GraphPairIndex(pa_pair.g1, pa_pair.g2)
        args = linked_masks(index, pa_seeds)
        part, _ = count_witnesses(index, *args)
        ws = ScatterWorkspace.for_index(index)
        first, _ = merge_score_tables(index, parts_of(part), workspace=ws)
        buf = ws._buf
        second, _ = merge_score_tables(index, parts_of(part), workspace=ws)
        assert ws._buf is buf
        assert table(first) == table(second)
        assert not ws._buf.any()


class TestBincountFastPath:
    def test_fast_path_equals_unique(self, pa_pair, pa_seeds, monkeypatch):
        """Force both accumulation strategies and compare tables."""
        index = GraphPairIndex(pa_pair.g1, pa_pair.g2)
        args = linked_masks(index, pa_seeds)
        fast, fast_emitted = count_witnesses(index, *args, use_sparse=False)
        monkeypatch.setattr(kernels, "_SCATTER_KEYSPACE_CAP", 0)
        slow, slow_emitted = count_witnesses(index, *args, use_sparse=False)
        assert fast_emitted == slow_emitted
        assert table(fast) == table(slow)


class TestBlockedNative:
    def test_blocked_fold_native(self, pa_pair, pa_seeds, nk):
        index = GraphPairIndex(pa_pair.g1, pa_pair.g2)
        args = linked_masks(index, pa_seeds)
        ref, ref_emitted = count_witnesses_blocked(
            index, *args, memory_budget_mb=1
        )
        nat, nat_emitted = count_witnesses_blocked(
            index, *args, memory_budget_mb=1, native=nk
        )
        assert nat_emitted == ref_emitted
        assert canon(nat) == canon(ref)
        assert nat.native is nk

    def test_blocked_fold_workspace(self, pa_pair, pa_seeds):
        index = GraphPairIndex(pa_pair.g1, pa_pair.g2)
        args = linked_masks(index, pa_seeds)
        ref, _ = count_witnesses_blocked(index, *args, memory_budget_mb=1)
        ws = ScatterWorkspace.for_index(index)
        got, _ = count_witnesses_blocked(
            index, *args, memory_budget_mb=1, workspace=ws
        )
        assert canon(got) == canon(ref)
