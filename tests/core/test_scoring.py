"""Unit tests for similarity-witness scoring (Definition 1)."""

from repro.core.scoring import count_similarity_witnesses, witness_score
from repro.graphs.graph import Graph


def two_triangles():
    """Two identical triangles with an extra pendant, same ids."""
    g1 = Graph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
    g2 = Graph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
    return g1, g2


class TestWitnessScore:
    def test_definition_one(self):
        g1, g2 = two_triangles()
        links = {0: 0}
        # (1, 1): u1=0 is a neighbor of 1 in g1, u2=0 neighbor of 1 in g2.
        assert witness_score(g1, g2, links, 1, 1) == 1
        assert witness_score(g1, g2, links, 1, 2) == 1
        assert witness_score(g1, g2, links, 3, 3) == 0

    def test_score_counts_multiple_witnesses(self):
        g1, g2 = two_triangles()
        links = {0: 0, 1: 1}
        assert witness_score(g1, g2, links, 2, 2) == 2

    def test_directionality(self):
        g1 = Graph.from_edges([(0, 1)])
        g2 = Graph.from_edges([(0, 1), (1, 2)])
        links = {0: 0}
        assert witness_score(g1, g2, links, 1, 1) == 1
        assert witness_score(g1, g2, links, 1, 2) == 0


class TestCountSimilarityWitnesses:
    def test_matches_pairwise_scores(self):
        g1, g2 = two_triangles()
        links = {0: 0}
        scores, emitted = count_similarity_witnesses(g1, g2, links)
        assert scores[1][1] == 1
        assert scores[1][2] == 1
        assert scores[2][1] == 1
        assert scores[2][2] == 1
        assert emitted == 4

    def test_linked_nodes_excluded_as_candidates(self):
        g1, g2 = two_triangles()
        links = {0: 0, 2: 2}
        scores, _ = count_similarity_witnesses(g1, g2, links)
        assert 0 not in scores
        assert 2 not in scores
        for row in scores.values():
            assert 0 not in row
            assert 2 not in row

    def test_min_degree_filter(self):
        g1, g2 = two_triangles()
        links = {2: 2}
        scores, _ = count_similarity_witnesses(g1, g2, links, min_degree=2)
        # node 3 has degree 1: filtered out on both sides.
        assert 3 not in scores
        for row in scores.values():
            assert 3 not in row

    def test_empty_links(self):
        g1, g2 = two_triangles()
        scores, emitted = count_similarity_witnesses(g1, g2, {})
        assert scores == {}
        assert emitted == 0

    def test_cross_check_with_witness_score(self, pa_pair, pa_seeds):
        scores, _ = count_similarity_witnesses(
            pa_pair.g1, pa_pair.g2, pa_seeds
        )
        checked = 0
        for v1, row in list(scores.items())[:20]:
            for v2, sc in list(row.items())[:5]:
                assert sc == witness_score(
                    pa_pair.g1, pa_pair.g2, pa_seeds, v1, v2
                )
                checked += 1
        assert checked > 0

    def test_emitted_equals_total_score_mass(self):
        g1, g2 = two_triangles()
        links = {0: 0, 1: 1}
        scores, emitted = count_similarity_witnesses(g1, g2, links)
        mass = sum(sum(row.values()) for row in scores.values())
        assert emitted == mass
