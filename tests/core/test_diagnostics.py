"""Unit tests for match diagnostics."""

from repro.core.diagnostics import explain_pair, margin, rank_candidates
from repro.core.scoring import witness_score
from repro.graphs.graph import Graph


def diamond_pair():
    """Two identical diamonds: 0-1, 0-2, 1-3, 2-3 plus pendant 3-4."""
    edges = [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]
    return Graph.from_edges(edges), Graph.from_edges(edges)


class TestExplainPair:
    def test_witnesses_listed(self):
        g1, g2 = diamond_pair()
        links = {1: 1, 2: 2}
        exp = explain_pair(g1, g2, links, 3, 3)
        assert exp.score == 2
        assert (1, 1) in exp.witnesses
        assert (2, 2) in exp.witnesses

    def test_score_matches_witness_score(self, pa_pair, pa_seeds):
        checked = 0
        for v1 in list(pa_pair.g1.nodes())[:30]:
            if v1 in pa_seeds:
                continue
            exp = explain_pair(pa_pair.g1, pa_pair.g2, pa_seeds, v1, v1)
            assert exp.score == witness_score(
                pa_pair.g1, pa_pair.g2, pa_seeds, v1, v1
            )
            checked += 1
        assert checked > 0

    def test_no_witnesses(self):
        g1, g2 = diamond_pair()
        exp = explain_pair(g1, g2, {}, 3, 3)
        assert exp.score == 0
        assert exp.witnesses == ()

    def test_str_rendering(self):
        g1, g2 = diamond_pair()
        exp = explain_pair(g1, g2, {1: 1}, 3, 3)
        text = str(exp)
        assert "score=1" in text
        assert "3" in text


class TestRankCandidates:
    def test_true_match_ranks_first(self):
        g1, g2 = diamond_pair()
        # With only {1, 2} linked, nodes 0 and 3 are witness-symmetric
        # (both adjacent to 1 and 2) — adding the pendant 4 breaks the
        # symmetry in favor of the true match.
        links = {1: 1, 2: 2, 4: 4}
        ranked = rank_candidates(g1, g2, links, 3)
        assert ranked[0].right == 3
        assert ranked[0].score == 3

    def test_excludes_linked_right_nodes(self):
        g1, g2 = diamond_pair()
        links = {1: 1, 2: 2, 0: 0}
        ranked = rank_candidates(g1, g2, links, 3)
        assert all(exp.right not in (0, 1, 2) for exp in ranked)

    def test_limit(self, pa_pair, pa_seeds):
        hub = max(pa_pair.g1.nodes(), key=pa_pair.g1.degree)
        ranked = rank_candidates(
            pa_pair.g1, pa_pair.g2, pa_seeds, hub, limit=3
        )
        assert len(ranked) <= 3

    def test_sorted_by_score(self, pa_pair, pa_seeds):
        hub = max(pa_pair.g1.nodes(), key=pa_pair.g1.degree)
        ranked = rank_candidates(
            pa_pair.g1, pa_pair.g2, pa_seeds, hub, limit=10
        )
        scores = [e.score for e in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_no_links_no_candidates(self):
        g1, g2 = diamond_pair()
        assert rank_candidates(g1, g2, {}, 3) == []


class TestMargin:
    def test_unambiguous_match_has_margin(self):
        g1, g2 = diamond_pair()
        links = {1: 1, 2: 2, 4: 4}
        assert margin(g1, g2, links, 3) >= 1

    def test_symmetric_candidates_zero_margin(self):
        # Nodes 0 and 3 are witness-symmetric under links {1, 2}: the
        # margin is zero — exactly the ambiguity the SKIP policy refuses.
        g1, g2 = diamond_pair()
        links = {1: 1, 2: 2}
        assert margin(g1, g2, links, 3) == 0

    def test_no_candidates_zero(self):
        g1, g2 = diamond_pair()
        assert margin(g1, g2, {}, 3) == 0

    def test_single_candidate_margin_is_score(self):
        g1 = Graph.from_edges([(0, 1)])
        g2 = Graph.from_edges([(0, 1)])
        links = {0: 0}
        assert margin(g1, g2, links, 1) == 1
