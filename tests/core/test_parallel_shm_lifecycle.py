"""Regression tests for shared-memory release on failure paths.

These lock in the RPR004 fixes: a mid-loop attach failure in the worker
initializer must close the segments already attached, pool-construction
failure must release every exported segment, and ``close()`` must still
``unlink()`` a segment whose ``close()`` raised.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.core import parallel


class FakeSharedMemory:
    """Stand-in segment recording its lifecycle calls."""

    created: list["FakeSharedMemory"] = []
    fail_on_attach: set[str] = set()
    _counter = 0

    def __init__(self, name=None, create=False, size=0):
        if not create and name in self.fail_on_attach:
            raise FileNotFoundError(name)
        if name is None:
            type(self)._counter += 1
            name = f"fake-{type(self)._counter}"
        self.name = name
        self.create = create
        # Attaches pass no size; allot enough for any test-sized array.
        self._raw = bytearray(size if size > 0 else 64)
        self.buf = memoryview(self._raw)
        self.closed = False
        self.unlinked = False
        self.close_raises = False
        type(self).created.append(self)

    def close(self):
        if self.close_raises:
            self.closed = True
            raise OSError("close failed")
        self.closed = True

    def unlink(self):
        self.unlinked = True


@pytest.fixture(autouse=True)
def fake_shm(monkeypatch):
    FakeSharedMemory.created = []
    FakeSharedMemory.fail_on_attach = set()
    FakeSharedMemory._counter = 0
    monkeypatch.setattr(
        parallel,
        "_shared_memory",
        SimpleNamespace(SharedMemory=FakeSharedMemory),
    )
    return FakeSharedMemory


def make_specs(count: int) -> dict[str, parallel._ArraySpec]:
    return {
        f"arr{i}": parallel._ArraySpec(
            name=f"seg-{i}", shape=(2,), dtype="<i8"
        )
        for i in range(count)
    }


class TestInitWorkerFailure:
    def test_mid_loop_attach_failure_closes_earlier_segments(
        self, fake_shm, monkeypatch
    ):
        monkeypatch.setattr(parallel, "_WORKER_CTX", None)
        fake_shm.fail_on_attach = {"seg-2"}
        with pytest.raises(FileNotFoundError):
            parallel._init_worker(make_specs(4), n1=2, n2=2)
        # Segments 0 and 1 attached before the failure; both released.
        assert len(fake_shm.created) == 2
        assert all(shm.closed for shm in fake_shm.created)
        assert parallel._WORKER_CTX is None

    def test_successful_init_keeps_segments_open(self, fake_shm, monkeypatch):
        monkeypatch.setattr(parallel, "_WORKER_CTX", None)
        specs = {
            key: parallel._ArraySpec(
                name=f"seg-{key}", shape=(2,), dtype="<i8"
            )
            for key in ("indptr1", "indices1", "indptr2", "indices2")
        }
        parallel._init_worker(specs, n1=1, n2=1)
        try:
            assert not any(shm.closed for shm in fake_shm.created)
            assert parallel._WORKER_CTX is not None
        finally:
            monkeypatch.setattr(parallel, "_WORKER_CTX", None)


def make_index() -> SimpleNamespace:
    csr = SimpleNamespace(
        indptr=np.zeros(3, dtype=np.int64),
        indices=np.zeros(2, dtype=np.int64),
    )
    return SimpleNamespace(csr1=csr, csr2=csr, n1=2, n2=2)


class TestPoolConstructionFailure:
    def test_pool_start_failure_releases_every_segment(
        self, fake_shm, monkeypatch
    ):
        class BrokenContext:
            def Pool(self, *args, **kwargs):
                raise OSError("no semaphores here")

        monkeypatch.setattr(
            parallel.multiprocessing,
            "get_context",
            lambda method: BrokenContext(),
        )
        with pytest.raises(OSError):
            parallel.WitnessPool(make_index(), workers=2)
        # Six exports (2x indptr/indices + 2 eligibility buffers), all
        # closed AND unlinked — these are created segments.
        assert len(fake_shm.created) == 6
        assert all(shm.closed for shm in fake_shm.created)
        assert all(shm.unlinked for shm in fake_shm.created)

    def test_mid_export_failure_releases_earlier_segments(
        self, fake_shm, monkeypatch
    ):
        original_init = FakeSharedMemory.__init__
        calls = {"n": 0}

        def failing_init(self, name=None, create=False, size=0):
            calls["n"] += 1
            if calls["n"] == 3:
                raise OSError("shm exhausted")
            original_init(self, name=name, create=create, size=size)

        monkeypatch.setattr(FakeSharedMemory, "__init__", failing_init)
        with pytest.raises(OSError):
            parallel.WitnessPool(make_index(), workers=2)
        assert len(fake_shm.created) == 2
        assert all(shm.closed for shm in fake_shm.created)
        assert all(shm.unlinked for shm in fake_shm.created)


class TestCloseIndependence:
    def test_unlink_still_runs_when_close_raises(self, fake_shm):
        pool = parallel.WitnessPool.__new__(parallel.WitnessPool)
        pool._pool = None
        pool._views = {}
        pool._staged_elig = None
        bad = FakeSharedMemory(create=True, size=8)
        bad.close_raises = True
        good = FakeSharedMemory(create=True, size=8)
        pool._segments = [bad, good]
        pool.close()
        assert bad.unlinked, "close() failure must not skip unlink()"
        assert good.closed and good.unlinked
        assert pool._segments == []
