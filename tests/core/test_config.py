"""Unit tests for MatcherConfig validation."""

import pytest

from repro.core.config import MatcherConfig, TiePolicy
from repro.errors import MatcherConfigError


class TestMatcherConfig:
    def test_defaults(self):
        cfg = MatcherConfig()
        assert cfg.threshold == 2
        assert cfg.iterations == 1
        assert cfg.use_degree_buckets is True
        assert cfg.min_bucket_exponent == 1
        assert cfg.tie_policy is TiePolicy.SKIP

    def test_frozen(self):
        cfg = MatcherConfig()
        with pytest.raises(AttributeError):
            cfg.threshold = 5

    @pytest.mark.parametrize("threshold", [0, -1, 1.5, "2"])
    def test_invalid_threshold(self, threshold):
        with pytest.raises(MatcherConfigError):
            MatcherConfig(threshold=threshold)

    @pytest.mark.parametrize("iterations", [0, -2, 0.5])
    def test_invalid_iterations(self, iterations):
        with pytest.raises(MatcherConfigError):
            MatcherConfig(iterations=iterations)

    def test_invalid_max_degree(self):
        with pytest.raises(MatcherConfigError):
            MatcherConfig(max_degree=0)

    def test_none_max_degree_ok(self):
        assert MatcherConfig(max_degree=None).max_degree is None

    def test_invalid_min_bucket(self):
        with pytest.raises(MatcherConfigError):
            MatcherConfig(min_bucket_exponent=-1)

    def test_invalid_tie_policy(self):
        with pytest.raises(MatcherConfigError):
            MatcherConfig(tie_policy="skip")

    def test_valid_full_config(self):
        cfg = MatcherConfig(
            threshold=9,
            iterations=3,
            max_degree=128,
            use_degree_buckets=False,
            min_bucket_exponent=0,
            tie_policy=TiePolicy.LOWEST_ID,
        )
        assert cfg.threshold == 9


class TestMemoryBudget:
    def test_default_is_unbudgeted(self):
        from repro.core.config import MatcherConfig

        assert MatcherConfig().memory_budget_mb is None

    def test_valid_budget(self):
        from repro.core.config import MatcherConfig

        assert MatcherConfig(memory_budget_mb=256).memory_budget_mb == 256

    def test_invalid_budgets(self):
        import pytest

        from repro.core.config import MatcherConfig
        from repro.errors import MatcherConfigError

        for bad in (0, -1, 1.5, "256", True):
            with pytest.raises(MatcherConfigError):
                MatcherConfig(memory_budget_mb=bad)

    def test_validate_helper(self):
        import pytest

        from repro.core.config import validate_memory_budget_mb
        from repro.errors import MatcherConfigError

        assert validate_memory_budget_mb(None) is None
        assert validate_memory_budget_mb(64) == 64
        with pytest.raises(MatcherConfigError):
            validate_memory_budget_mb(0)
