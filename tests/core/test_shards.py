"""Unit tests for the greedy LPT shard planner."""

import numpy as np
import pytest

from repro.core.shards import (
    link_weights,
    plan_balanced_shards,
    plan_link_shards,
)
from repro.generators.preferential_attachment import (
    preferential_attachment_graph,
)
from repro.graphs.pair_index import GraphPairIndex
from repro.sampling.edge_sampling import independent_copies
from repro.seeds.generators import sample_seeds


class TestPlanBalancedShards:
    def test_covers_every_item_exactly_once(self):
        weights = np.array([5, 1, 9, 2, 2, 7, 3], dtype=np.int64)
        plan = plan_balanced_shards(weights, 3)
        seen = np.concatenate(plan.shards)
        assert sorted(seen.tolist()) == list(range(len(weights)))

    def test_loads_match_members(self):
        weights = np.array([4, 4, 4, 1, 1, 1], dtype=np.int64)
        plan = plan_balanced_shards(weights, 3)
        for shard, load in zip(plan.shards, plan.loads):
            assert int(weights[shard].sum()) == load
        assert plan.total_load == 15

    def test_giant_item_does_not_serialize_the_rest(self):
        """One hub gets its own shard; the tail spreads over the others."""
        weights = np.array([1000] + [1] * 30, dtype=np.int64)
        plan = plan_balanced_shards(weights, 4)
        hub_shard = next(s for s in plan.shards if 0 in s.tolist())
        assert hub_shard.tolist() == [0]
        # The 30 unit items land on the other three shards, balanced.
        other_loads = sorted(
            load
            for shard, load in zip(plan.shards, plan.loads)
            if 0 not in shard.tolist()
        )
        assert other_loads == [10, 10, 10]

    def test_deterministic(self):
        rng = np.random.default_rng(7)
        weights = rng.integers(1, 100, size=200)
        a = plan_balanced_shards(weights, 5)
        b = plan_balanced_shards(weights, 5)
        assert all((x == y).all() for x, y in zip(a.shards, b.shards))
        assert a.loads == b.loads

    def test_near_optimal_balance(self):
        """LPT keeps max load within 4/3 of the perfect split."""
        rng = np.random.default_rng(0)
        weights = rng.integers(1, 50, size=500)
        plan = plan_balanced_shards(weights, 8)
        perfect = plan.total_load / 8
        assert max(plan.loads) <= (4 / 3) * perfect + max(weights)
        assert plan.imbalance() < 4 / 3

    def test_empty_workload(self):
        plan = plan_balanced_shards(np.empty(0, dtype=np.int64), 4)
        assert plan.num_shards == 0
        assert plan.total_load == 0
        assert plan.imbalance() == 1.0

    def test_single_item_single_shard(self):
        plan = plan_balanced_shards(np.array([42]), 4)
        assert plan.num_shards == 1
        assert plan.shards[0].tolist() == [0]
        assert plan.loads == (42,)

    def test_more_shards_than_items_drops_empties(self):
        plan = plan_balanced_shards(np.array([3, 3]), 10)
        assert plan.num_shards == 2
        assert all(len(s) == 1 for s in plan.shards)

    def test_one_shard_is_identity(self):
        weights = np.array([2, 5, 1], dtype=np.int64)
        plan = plan_balanced_shards(weights, 1)
        assert plan.num_shards == 1
        assert plan.shards[0].tolist() == [0, 1, 2]

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            plan_balanced_shards(np.array([1]), 0)

    def test_shard_indices_sorted_ascending(self):
        weights = np.array([9, 1, 8, 2, 7, 3], dtype=np.int64)
        plan = plan_balanced_shards(weights, 2)
        for shard in plan.shards:
            assert shard.tolist() == sorted(shard.tolist())


class TestLinkWeights:
    @pytest.fixture()
    def indexed_workload(self):
        g = preferential_attachment_graph(120, 4, seed=0)
        pair = independent_copies(g, 0.6, seed=1)
        seeds = sample_seeds(pair, 0.15, seed=2)
        index = GraphPairIndex(pair.g1, pair.g2)
        link_l, link_r = index.intern_links(seeds)
        return index, link_l, link_r

    def test_weights_are_degree_products(self, indexed_workload):
        index, link_l, link_r = indexed_workload
        w = link_weights(index, link_l, link_r)
        assert len(w) == len(link_l)
        expected = np.maximum(index.deg1[link_l], 1) * np.maximum(
            index.deg2[link_r], 1
        )
        assert (w == expected).all()
        assert (w >= 1).all()

    def test_empty_links(self, indexed_workload):
        index, _l, _r = indexed_workload
        empty = np.empty(0, dtype=np.int64)
        assert len(link_weights(index, empty, empty)) == 0

    def test_plan_link_shards_covers_all_links(self, indexed_workload):
        index, link_l, link_r = indexed_workload
        plan = plan_link_shards(index, link_l, link_r, 3)
        assert plan.num_shards == 3
        seen = sorted(np.concatenate(plan.shards).tolist())
        assert seen == list(range(len(link_l)))


class TestPlanMemoryBlocks:
    def test_no_budget_is_single_block(self):
        from repro.core.shards import plan_memory_blocks

        weights = np.array([5, 1, 9, 2], dtype=np.int64)
        plan = plan_memory_blocks(weights, None)
        assert plan.num_blocks == 1
        assert plan.blocks[0].tolist() == [0, 1, 2, 3]
        assert plan.loads == (17,)
        assert plan.budget is None

    def test_large_budget_degenerates_to_single_block(self):
        from repro.core.shards import plan_memory_blocks

        weights = np.array([5, 1, 9, 2], dtype=np.int64)
        plan = plan_memory_blocks(weights, 1_000_000)
        assert plan.num_blocks == 1
        assert plan.max_load == 17

    def test_budget_respected_by_every_multi_item_block(self):
        from repro.core.shards import plan_memory_blocks

        rng = np.random.default_rng(3)
        weights = rng.integers(1, 40, size=300)
        budget = 100
        plan = plan_memory_blocks(weights, budget)
        assert plan.num_blocks > 1
        for block, load in zip(plan.blocks, plan.loads):
            assert int(weights[block].sum()) == load
            if len(block) > 1:
                assert load <= budget

    def test_blocks_are_contiguous_and_cover_everything(self):
        from repro.core.shards import plan_memory_blocks

        rng = np.random.default_rng(4)
        weights = rng.integers(1, 25, size=200)
        plan = plan_memory_blocks(weights, 60)
        flat = np.concatenate(plan.blocks)
        assert flat.tolist() == list(range(len(weights)))
        for block in plan.blocks:
            assert block.tolist() == list(
                range(int(block[0]), int(block[-1]) + 1)
            )

    def test_oversized_item_gets_singleton_block(self):
        from repro.core.shards import plan_memory_blocks

        weights = np.array([3, 500, 3, 3], dtype=np.int64)
        plan = plan_memory_blocks(weights, 10)
        singleton = [b.tolist() for b in plan.blocks if 1 in b.tolist()]
        assert singleton == [[1]]

    def test_deterministic(self):
        from repro.core.shards import plan_memory_blocks

        rng = np.random.default_rng(9)
        weights = rng.integers(1, 80, size=400)
        a = plan_memory_blocks(weights, 200)
        b = plan_memory_blocks(weights, 200)
        assert a.loads == b.loads
        assert all((x == y).all() for x, y in zip(a.blocks, b.blocks))

    def test_empty_workload(self):
        from repro.core.shards import plan_memory_blocks

        plan = plan_memory_blocks(np.empty(0, dtype=np.int64), 5)
        assert plan.num_blocks == 0
        assert plan.max_load == 0

    def test_invalid_budget(self):
        from repro.core.shards import plan_memory_blocks

        with pytest.raises(ValueError):
            plan_memory_blocks(np.array([1]), 0)


class TestPlanWitnessBlocks:
    def test_budget_unit_conversion(self):
        from repro.core.shards import (
            WITNESS_PAIR_BYTES,
            witness_block_budget,
        )

        assert witness_block_budget(None) is None
        assert witness_block_budget(1) == (1024 * 1024) // WITNESS_PAIR_BYTES
        # Degenerate budgets still plan at least one pair per block.
        assert witness_block_budget(1) >= 1

    def test_plan_over_real_links(self):
        from unittest import mock

        import repro.core.shards as shards

        g = preferential_attachment_graph(150, 4, seed=0)
        pair = independent_copies(g, 0.6, seed=1)
        seeds = sample_seeds(pair, 0.15, seed=2)
        index = GraphPairIndex(pair.g1, pair.g2)
        link_l, link_r = index.intern_links(seeds)
        # Real budgets dwarf a test workload; inflate the per-pair cost
        # so a 1 MiB budget forces a genuine multi-block plan.
        with mock.patch.object(shards, "WITNESS_PAIR_BYTES", 256 * 1024):
            plan = shards.plan_witness_blocks(index, link_l, link_r, 1)
        assert plan.num_blocks > 1
        assert np.concatenate(plan.blocks).tolist() == list(range(len(link_l)))
