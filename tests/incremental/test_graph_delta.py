"""Unit tests for :mod:`repro.incremental.delta`."""

import pytest

from repro.graphs.graph import Graph
from repro.incremental.delta import (
    DeltaError,
    GraphDelta,
    apply_delta_to_graphs,
    delta_between,
    split_edge_stream,
)


def square():
    return Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])


class TestGraphDelta:
    def test_build_normalizes(self):
        delta = GraphDelta.build(
            added_edges1=[(1, 2)],
            added_seeds={1: 10},
        )
        assert delta.added_edges1 == ((1, 2),)
        assert delta.added_seeds == ((1, 10),)
        assert not delta.is_empty
        assert delta.num_edge_changes == 1

    def test_empty(self):
        assert GraphDelta.build().is_empty

    def test_self_loop_rejected(self):
        with pytest.raises(DeltaError):
            GraphDelta.build(added_edges1=[(1, 1)])

    def test_bad_edge_shape_rejected(self):
        with pytest.raises(DeltaError):
            GraphDelta.build(added_edges2=[(1, 2, 3)])

    def test_repr_counts(self):
        delta = GraphDelta.build(
            added_edges1=[(1, 2)], removed_edges2=[(0, 1)]
        )
        assert "+e1=1" in repr(delta)
        assert "-e2=1" in repr(delta)


class TestApplyDelta:
    def test_apply_adds_and_removes(self):
        g1, g2 = square(), square()
        delta = GraphDelta.build(
            added_edges1=[(0, 2)],
            removed_edges2=[(2, 3)],
            added_seeds={0: 0},
        )
        apply_delta_to_graphs(g1, g2, delta)
        assert g1.has_edge(0, 2)
        assert not g2.has_edge(2, 3)

    def test_new_nodes_created(self):
        g1, g2 = square(), square()
        apply_delta_to_graphs(
            g1, g2, GraphDelta.build(added_edges1=[(0, "new")])
        )
        assert g1.has_node("new")

    def test_strict_duplicate_add_raises(self):
        g1, g2 = square(), square()
        with pytest.raises(DeltaError):
            apply_delta_to_graphs(
                g1, g2, GraphDelta.build(added_edges1=[(0, 1)])
            )

    def test_strict_missing_removal_raises(self):
        g1, g2 = square(), square()
        with pytest.raises(DeltaError):
            apply_delta_to_graphs(
                g1, g2, GraphDelta.build(removed_edges1=[(0, 2)])
            )

    def test_seed_must_reference_existing_nodes(self):
        g1, g2 = square(), square()
        with pytest.raises(DeltaError):
            apply_delta_to_graphs(
                g1, g2, GraphDelta.build(added_seeds={99: 0})
            )


class TestSplitEdgeStream:
    def test_partition_covers_stream_in_order(self):
        edges1 = [(0, i) for i in range(1, 8)]
        edges2 = [(1, i) for i in range(2, 6)]
        deltas = split_edge_stream(edges1, edges2, 3)
        assert len(deltas) == 3
        replay1 = [e for d in deltas for e in d.added_edges1]
        replay2 = [e for d in deltas for e in d.added_edges2]
        assert replay1 == edges1
        assert replay2 == edges2

    def test_seeds_in_first_batch_by_default(self):
        deltas = split_edge_stream([(0, 1)], [], 2, added_seeds={5: 6})
        assert deltas[0].added_seeds == ((5, 6),)
        assert deltas[1].added_seeds == ()

    def test_seeds_in_last_batch(self):
        deltas = split_edge_stream(
            [(0, 1)], [], 2, added_seeds={5: 6}, seeds_in_first=False
        )
        assert deltas[1].added_seeds == ((5, 6),)

    def test_invalid_count(self):
        with pytest.raises(DeltaError):
            split_edge_stream([], [], 0)


class TestDeltaBetween:
    def test_diff_roundtrip(self):
        g1_old, g2_old = square(), square()
        g1_new, g2_new = square(), square()
        g1_new.add_edge(0, 2)
        g1_new.add_edge(1, "x")
        g2_new.remove_edge(3, 0)
        delta = delta_between(
            g1_old, g2_old, {0: 0}, g1_new, g2_new, {0: 0, 1: 1}
        )
        apply_delta_to_graphs(g1_old, g2_old, delta)
        assert g1_old == g1_new
        assert g2_old == g2_new
        assert dict(delta.added_seeds) == {1: 1}

    def test_shrunk_seeds_refused(self):
        g = square()
        with pytest.raises(DeltaError):
            delta_between(g, g, {0: 0}, g, g, {})

    def test_remapped_seed_refused(self):
        g = square()
        with pytest.raises(DeltaError):
            delta_between(g, g, {0: 0}, g, g, {0: 1})


class TestAddedNodes:
    def test_isolated_nodes_created(self):
        g1, g2 = square(), square()
        apply_delta_to_graphs(
            g1,
            g2,
            GraphDelta.build(added_nodes1=["lonely"], added_seeds=()),
        )
        assert g1.has_node("lonely")
        assert g1.degree("lonely") == 0

    def test_isolated_node_can_be_seeded(self):
        g1, g2 = square(), square()
        apply_delta_to_graphs(
            g1,
            g2,
            GraphDelta.build(
                added_nodes1=["x"],
                added_nodes2=["y"],
                added_seeds={"x": "y"},
            ),
        )
        assert g1.has_node("x") and g2.has_node("y")

    def test_readding_existing_node_is_noop(self):
        g1, g2 = square(), square()
        apply_delta_to_graphs(g1, g2, GraphDelta.build(added_nodes1=[0]))
        assert g1.degree(0) == 2  # untouched

    def test_delta_between_emits_isolated_new_nodes(self):
        old1, old2 = square(), square()
        new1, new2 = square(), square()
        new1.add_node("iso1")
        new2.add_node("iso2")
        delta = delta_between(old1, old2, {}, new1, new2, {"iso1": "iso2"})
        assert "iso1" in delta.added_nodes1
        assert "iso2" in delta.added_nodes2
        apply_delta_to_graphs(old1, old2, delta)
        assert old1 == new1 and old2 == new2


class TestPayloadRoundTrip:
    def test_to_from_payload_round_trips(self):
        from repro.incremental.delta import (
            delta_from_payload,
            delta_to_payload,
        )

        delta = GraphDelta.build(
            added_edges1=[(1, 2), ("a", "b")],
            removed_edges2=[(3, 4)],
            added_nodes1=[9],
            added_seeds=[(1, 1), ("a", "a")],
        )
        payload = delta_to_payload(delta)
        assert "added_edges2" not in payload  # empty fields omitted
        assert delta_from_payload(payload) == delta

    def test_payload_survives_json(self):
        import json

        from repro.incremental.delta import (
            delta_from_payload,
            delta_to_payload,
        )

        delta = GraphDelta.build(
            added_edges1=[("1", 1)], added_seeds=[("1", "1")]
        )
        wire = json.loads(json.dumps(delta_to_payload(delta)))
        restored = delta_from_payload(wire)
        assert restored == delta  # "1" stays str, 1 stays int

    @pytest.mark.parametrize(
        "payload",
        [
            [1, 2],
            {"bogus": []},
            {"added_edges1": "not-a-list"},
            {"added_edges1": [[1, 2, 3]]},
            {"added_seeds": [["only-one"]]},
        ],
    )
    def test_malformed_payloads_rejected(self, payload):
        from repro.incremental.delta import delta_from_payload

        with pytest.raises(DeltaError):
            delta_from_payload(payload)


class TestValidateDelta:
    def test_valid_delta_passes_without_mutation(self):
        from repro.incremental.delta import validate_delta

        g1, g2 = square(), square()
        delta = GraphDelta.build(
            added_edges1=[(0, 2)],
            removed_edges1=[(0, 1)],
            added_seeds=[(0, 0)],
        )
        validate_delta(g1, g2, delta)
        assert g1.num_edges == 4  # untouched

    def test_mirrors_apply_strictness(self):
        from repro.incremental.delta import validate_delta

        g1, g2 = square(), square()
        with pytest.raises(DeltaError, match="already present"):
            validate_delta(
                g1, g2, GraphDelta.build(added_edges1=[(0, 1)])
            )
        with pytest.raises(DeltaError, match="not present"):
            validate_delta(
                g1, g2, GraphDelta.build(removed_edges2=[(0, 2)])
            )
        with pytest.raises(DeltaError, match="not in g2"):
            validate_delta(
                g1, g2, GraphDelta.build(added_seeds=[(0, 99)])
            )

    def test_within_delta_sequencing(self):
        from repro.incremental.delta import validate_delta

        g1, g2 = square(), square()
        # Remove an edge the same delta adds: fine (additions first).
        validate_delta(
            g1,
            g2,
            GraphDelta.build(
                added_edges1=[(0, 2)], removed_edges1=[(0, 2)]
            ),
        )
        # Seed referencing a node the delta itself creates: fine.
        validate_delta(
            g1,
            g2,
            GraphDelta.build(
                added_nodes1=[7], added_edges2=[(7, 0)], added_seeds=[(7, 7)]
            ),
        )

    def test_validated_delta_never_raises_on_apply(self):
        from repro.incremental.delta import validate_delta

        g1, g2 = square(), square()
        delta = GraphDelta.build(
            added_edges1=[(0, 2), (4, 5)],
            removed_edges1=[(4, 5), (0, 1)],
            added_nodes2=[9],
            added_seeds=[(4, 9)],
        )
        validate_delta(g1, g2, delta)
        apply_delta_to_graphs(g1, g2, delta)  # must not raise
