"""Tests for the ``repro stream`` driver."""

import pytest

from repro.errors import ReproError
from repro.incremental.stream import build_stream_workload, run_stream


class TestBuildStreamWorkload:
    def test_deterministic(self):
        a = build_stream_workload(n=300, batches=3, seed=5)
        b = build_stream_workload(n=300, batches=3, seed=5)
        assert a[0].g1 == b[0].g1
        assert a[1] == b[1]
        assert a[2] == b[2]

    def test_replaying_deltas_restores_the_full_copies(self):
        from repro.incremental.delta import apply_delta_to_graphs

        pair, _seeds, deltas = build_stream_workload(n=300, batches=4, seed=6)
        full, _s, _d = build_stream_workload(
            n=300, batches=4, seed=6, stream_fraction=0.2
        )
        for delta in deltas:
            apply_delta_to_graphs(pair.g1, pair.g2, delta)
        # Rebuild the untouched workload to compare edge counts.
        ref_pair, _seeds2, ref_deltas = build_stream_workload(
            n=300, batches=4, seed=6
        )
        total = sum(len(d.added_edges1) for d in ref_deltas)
        assert pair.g1.num_edges == ref_pair.g1.num_edges + total

    def test_bad_fraction_rejected(self):
        with pytest.raises(ReproError):
            build_stream_workload(stream_fraction=1.5)


class TestRunStream:
    def test_rows_and_cold_comparison(self):
        result = run_stream(n=400, batches=2, seed=3, compare_cold=True)
        assert len(result.rows) == 3  # cold start + 2 batches
        assert result.rows[0]["event"] == "cold start"
        for row in result.rows[1:]:
            assert row["mode"] in ("warm", "cold")
            assert "cold_ms" in row and "speedup" in row
            assert 0 <= row["precision"] <= 1

    def test_checkpoint_resume_continues(self, tmp_path):
        ck = tmp_path / "stream.npz"
        first = run_stream(n=400, batches=3, seed=4, checkpoint_path=str(ck))
        assert ck.exists()
        resumed = run_stream(
            n=400,
            batches=3,
            seed=4,
            checkpoint_path=str(ck),
            warm_start=True,
        )
        # Everything already applied: one status row, same final links.
        assert resumed.rows[-1]["links"] == first.rows[-1]["links"]

    def test_resume_requires_checkpoint(self):
        with pytest.raises(ReproError):
            run_stream(n=300, warm_start=True)

    def test_partial_resume_picks_up_where_left_off(self, tmp_path):
        ck = tmp_path / "stream.npz"
        # Run only the first half by asking for fewer batches... the
        # stream is a pure function of (seed, batches), so instead run
        # all batches once, then resume mid-way from a fresh engine by
        # checkpointing after batch 1.
        from repro.incremental.stream import build_stream_workload
        from repro.incremental.engine import IncrementalReconciler
        from repro.core.config import MatcherConfig

        pair, seeds, deltas = build_stream_workload(n=400, batches=3, seed=8)
        engine = IncrementalReconciler(
            MatcherConfig(threshold=2, iterations=1)
        )
        engine.start(pair.g1, pair.g2, seeds)
        engine.apply(deltas[0])
        engine.save_checkpoint(ck, extra_meta={"batches_done": 1})
        resumed = run_stream(
            n=400,
            batches=3,
            seed=8,
            checkpoint_path=str(ck),
            warm_start=True,
        )
        batch_rows = [r for r in resumed.rows if r["event"] == "delta"]
        assert [r["batch"] for r in batch_rows] == [2, 3]
        full = run_stream(n=400, batches=3, seed=8)
        assert (batch_rows[-1]["links"] == full.rows[-1]["links"])


class TestResumeWorkloadValidation:
    def test_mismatched_workload_refused(self, tmp_path):
        ck = tmp_path / "stream.npz"
        run_stream(n=400, batches=3, seed=4, checkpoint_path=str(ck))
        with pytest.raises(ReproError, match="different stream"):
            run_stream(
                n=400,
                batches=5,  # different cut of the same stream
                seed=4,
                checkpoint_path=str(ck),
                warm_start=True,
            )


class TestEventLog:
    def test_jsonl_log_replays_to_final_links(self, tmp_path):
        from repro.core.links_io import LinkStore
        from repro.incremental.engine import IncrementalReconciler

        ck = tmp_path / "stream.npz"
        run_stream(n=500, batches=3, seed=3, checkpoint_path=str(ck))
        store = LinkStore(str(ck) + ".jsonl")
        types = [e["type"] for e in store.events()]
        assert types[0] == "seeds"
        assert "delta" in types and "links" in types
        resumed = IncrementalReconciler.resume(ck)
        assert store.links() == resumed.result.links

    def test_fresh_run_truncates_stale_event_log(self, tmp_path):
        from repro.core.links_io import LinkStore
        from repro.incremental.engine import IncrementalReconciler

        ck = tmp_path / "stream.npz"
        run_stream(n=400, batches=2, seed=7, checkpoint_path=str(ck))
        run_stream(n=400, batches=2, seed=8, checkpoint_path=str(ck))
        store = LinkStore(str(ck) + ".jsonl")
        resumed = IncrementalReconciler.resume(ck)
        assert store.links() == resumed.result.links


class TestResumeMissingCheckpoint:
    def test_missing_checkpoint_raises_instead_of_cold_start(
        self, tmp_path
    ):
        absent = tmp_path / "never-written.npz"
        with pytest.raises(ReproError, match="does not\n?.*exist|exist"):
            run_stream(
                n=300,
                batches=2,
                seed=4,
                checkpoint_path=str(absent),
                warm_start=True,
            )
        # And the failed resume must not have created state either.
        assert not absent.exists()
