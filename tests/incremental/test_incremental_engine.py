"""Unit tests for :class:`repro.incremental.engine.IncrementalReconciler`."""

import numpy as np
import pytest

from repro.core.config import MatcherConfig
from repro.core.matcher import UserMatching
from repro.errors import ReproError
from repro.generators.erdos_renyi import gnp_graph
from repro.incremental import (
    GraphDelta,
    IncrementalReconciler,
)
from repro.registry import get_matcher
from repro.sampling.edge_sampling import independent_copies
from repro.seeds.generators import sample_seeds


def workload(seed=0, n=80, hold_back=15):
    g = gnp_graph(n, 0.08, seed=seed)
    pair = independent_copies(g, 0.7, seed=seed + 1)
    seeds = sample_seeds(pair, 0.2, seed=seed + 2)
    edges1 = sorted(pair.g1.edges())
    edges2 = sorted(pair.g2.edges())
    stream1, stream2 = edges1[:hold_back], edges2[:hold_back]
    base1, base2 = pair.g1.copy(), pair.g2.copy()
    for u, v in stream1:
        base1.remove_edge(u, v)
    for u, v in stream2:
        base2.remove_edge(u, v)
    return pair, seeds, base1, base2, stream1, stream2


class TestLifecycle:
    def test_start_matches_cold_run(self):
        pair, seeds, *_rest = workload()
        engine = IncrementalReconciler(MatcherConfig(threshold=2))
        result = engine.start(pair.g1, pair.g2, seeds)
        cold = UserMatching(
            MatcherConfig(threshold=2, backend="csr")
        ).run(pair.g1, pair.g2, seeds)
        assert result.links == cold.links
        assert result.phases == cold.phases

    def test_apply_before_start_raises(self):
        engine = IncrementalReconciler()
        with pytest.raises(ReproError):
            engine.apply(GraphDelta.build())

    def test_double_start_raises(self):
        pair, seeds, *_rest = workload()
        engine = IncrementalReconciler()
        engine.start(pair.g1, pair.g2, seeds)
        with pytest.raises(ReproError):
            engine.start(pair.g1, pair.g2, seeds)

    def test_empty_delta_is_noop(self):
        pair, seeds, *_rest = workload()
        engine = IncrementalReconciler()
        engine.start(pair.g1, pair.g2, seeds)
        before = engine.result
        outcome = engine.apply(GraphDelta.build())
        assert outcome.mode == "noop"
        assert outcome.result is before

    def test_config_and_matcher_are_exclusive(self):
        with pytest.raises(ReproError):
            IncrementalReconciler(
                MatcherConfig(),
                matcher=get_matcher("common-neighbors"),
            )


class TestWarmEquivalence:
    def test_stream_matches_cold_run(self):
        pair, seeds, base1, base2, s1, s2 = workload(seed=3)
        engine = IncrementalReconciler(
            MatcherConfig(threshold=2, iterations=2)
        )
        engine.start(base1, base2, seeds)
        outcome = None
        for i in range(0, len(s1), 5):
            outcome = engine.apply(
                GraphDelta.build(
                    added_edges1=s1[i : i + 5],
                    added_edges2=s2[i : i + 5],
                )
            )
        assert outcome.mode == "warm"
        cold = UserMatching(
            MatcherConfig(threshold=2, iterations=2, backend="csr")
        ).run(pair.g1, pair.g2, seeds)
        assert engine.result.links == cold.links
        assert engine.result.phases == cold.phases

    def test_removals_can_unmatch(self):
        pair, seeds, *_rest = workload(seed=5)
        engine = IncrementalReconciler(MatcherConfig(threshold=2))
        engine.start(pair.g1, pair.g2, seeds)
        # Remove a big batch of edges; the result must track the cold
        # run even when links disappear.
        victims = sorted(pair.g1.edges())[:20]
        outcome = engine.apply(GraphDelta.build(removed_edges1=victims))
        cold = UserMatching(
            MatcherConfig(threshold=2, backend="csr")
        ).run(pair.g1, pair.g2, seeds)
        assert outcome.result.links == cold.links
        assert (
            outcome.links_added + outcome.links_removed >= 0
        )  # stats exist

    def test_late_seeds_join_the_run(self):
        pair, seeds, base1, base2, s1, s2 = workload(seed=7)
        items = sorted(seeds.items(), key=repr)
        first, late = dict(items[:2]), dict(items[2:])
        engine = IncrementalReconciler(MatcherConfig(threshold=2))
        engine.start(base1, base2, first)
        engine.apply(
            GraphDelta.build(
                added_edges1=s1, added_edges2=s2, added_seeds=late
            )
        )
        cold = UserMatching(
            MatcherConfig(threshold=2, backend="csr")
        ).run(pair.g1, pair.g2, seeds)
        assert engine.result.links == cold.links

    def test_conflicting_seed_delta_raises(self):
        pair, seeds, *_rest = workload(seed=9)
        engine = IncrementalReconciler()
        engine.start(pair.g1, pair.g2, seeds)
        taken = next(iter(seeds.values()))
        fresh_left = next(v for v in pair.g1.nodes() if v not in seeds)
        with pytest.raises(ReproError):
            engine.apply(GraphDelta.build(added_seeds={fresh_left: taken}))


class TestColdFallback:
    @pytest.mark.parametrize("name", ["common-neighbors", "degree-sequence"])
    def test_black_box_matcher_streams_exactly(self, name):
        pair, seeds, base1, base2, s1, s2 = workload(seed=11)
        matcher = get_matcher(name)
        engine = IncrementalReconciler(matcher=matcher)
        engine.start(base1, base2, seeds)
        outcome = engine.apply(
            GraphDelta.build(added_edges1=s1, added_edges2=s2)
        )
        assert outcome.mode == "cold"
        assert outcome.dirty_links is None
        cold = get_matcher(name).run(pair.g1, pair.g2, seeds)
        assert engine.result.links == cold.links

    def test_fallback_checkpoint_refused(self, tmp_path):
        pair, seeds, *_rest = workload(seed=13)
        engine = IncrementalReconciler(matcher=get_matcher("common-neighbors"))
        engine.start(pair.g1, pair.g2, seeds)
        with pytest.raises(ReproError):
            engine.save_checkpoint(tmp_path / "x.npz")


class TestCheckpointing:
    def test_roundtrip_and_continue(self, tmp_path):
        pair, seeds, base1, base2, s1, s2 = workload(seed=17)
        engine = IncrementalReconciler(
            MatcherConfig(threshold=2, iterations=2)
        )
        engine.start(base1, base2, seeds)
        half = len(s1) // 2
        engine.apply(
            GraphDelta.build(
                added_edges1=s1[:half], added_edges2=s2[:half]
            )
        )
        path = tmp_path / "state.npz"
        engine.save_checkpoint(path, extra_meta={"k": 1})
        resumed = IncrementalReconciler.resume(path)
        assert resumed.result.links == engine.result.links
        assert resumed.checkpoint_extra == {"k": 1}
        tail = GraphDelta.build(added_edges1=s1[half:], added_edges2=s2[half:])
        engine.apply(tail)
        resumed.apply(tail)
        assert resumed.result.links == engine.result.links
        cold = UserMatching(
            MatcherConfig(threshold=2, iterations=2, backend="csr")
        ).run(pair.g1, pair.g2, seeds)
        assert resumed.result.links == cold.links

    def test_unstarted_checkpoint_refused(self, tmp_path):
        engine = IncrementalReconciler()
        with pytest.raises(ReproError):
            engine.save_checkpoint(tmp_path / "x.npz")

    def test_incompatible_config_refused(self, tmp_path):
        pair, seeds, *_rest = workload(seed=19)
        engine = IncrementalReconciler(MatcherConfig(threshold=2))
        engine.start(pair.g1, pair.g2, seeds)
        path = tmp_path / "state.npz"
        engine.save_checkpoint(path)
        resumed = IncrementalReconciler.resume(path)
        with pytest.raises(ReproError):
            resumed.require_config(MatcherConfig(threshold=3))
        # Execution-only differences are fine.
        resumed.require_config(
            MatcherConfig(threshold=2, backend="csr", workers=4)
        )

    def test_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(ReproError):
            IncrementalReconciler.resume(tmp_path / "missing.npz")


class TestUserMatchingIntegration:
    def test_checkpoint_path_and_warm_start_knobs(self, tmp_path):
        pair, seeds, base1, base2, s1, s2 = workload(seed=23)
        ck = tmp_path / "m.npz"
        cfg = MatcherConfig(
            threshold=2,
            iterations=2,
            checkpoint_path=str(ck),
            warm_start=True,
        )
        matcher = UserMatching(cfg)
        matcher.run(base1, base2, seeds)  # cold + persist
        assert ck.exists()
        warm = matcher.run(pair.g1, pair.g2, seeds)  # resume via diff
        cold = UserMatching(
            MatcherConfig(threshold=2, iterations=2, backend="csr")
        ).run(pair.g1, pair.g2, seeds)
        assert warm.links == cold.links
        # The caller's graphs are never mutated by the resume path.
        assert base1.num_edges == pair.g1.num_edges - len(s1)

    def test_warm_start_requires_checkpoint_path(self):
        from repro.errors import MatcherConfigError

        with pytest.raises(MatcherConfigError):
            MatcherConfig(warm_start=True)


class TestStatsAndRepr:
    def test_outcome_stats_populated(self):
        pair, seeds, base1, base2, s1, s2 = workload(seed=29)
        engine = IncrementalReconciler(MatcherConfig(threshold=2))
        engine.start(base1, base2, seeds)
        outcome = engine.apply(
            GraphDelta.build(added_edges1=s1[:3], added_edges2=s2[:3])
        )
        assert outcome.mode == "warm"
        assert outcome.rescored_rounds + outcome.full_rounds > 0
        assert outcome.elapsed > 0
        assert "IncrementalReconciler" in repr(engine)

    def test_link_arrays_consistent_with_result(self):
        pair, seeds, *_rest = workload(seed=31)
        engine = IncrementalReconciler(MatcherConfig(threshold=2))
        engine.start(pair.g1, pair.g2, seeds)
        exported = engine.index.export_links(engine._link_l, engine._link_r)
        assert exported == engine.result.links
        assert len(np.unique(engine._link_l)) == len(engine._link_l)


class TestReviewRegressions:
    def test_warm_resume_accepts_isolated_seed_node(self, tmp_path):
        """A new isolated node used as a seed must warm-resume exactly
        like a cold run accepts it (delta_between emits node adds)."""
        pair, seeds, *_rest = workload(seed=37)
        ck = tmp_path / "m.npz"
        cfg = MatcherConfig(
            threshold=2, checkpoint_path=str(ck), warm_start=True
        )
        matcher = UserMatching(cfg)
        matcher.run(pair.g1, pair.g2, seeds)
        g1b, g2b = pair.g1.copy(), pair.g2.copy()
        g1b.add_node("iso-left")
        g2b.add_node("iso-right")
        seeds2 = dict(seeds)
        seeds2["iso-left"] = "iso-right"
        warm = matcher.run(g1b, g2b, seeds2)
        cold = UserMatching(
            MatcherConfig(threshold=2, backend="csr")
        ).run(g1b, g2b, seeds2)
        assert warm.links == cold.links

    def test_progress_callback_fires_with_checkpoint_path(self, tmp_path):
        pair, seeds, *_rest = workload(seed=41)
        events = []
        cfg = MatcherConfig(
            threshold=2, checkpoint_path=str(tmp_path / "m.npz")
        )
        result = UserMatching(cfg).run(
            pair.g1, pair.g2, seeds, progress=events.append
        )
        assert len(events) == len(result.phases)
        assert events[-1].links_total == result.num_links

    def test_incremental_ranks_match_full_recompute(self):
        from repro.incremental.delta_index import DeltaIndex

        pair, seeds, base1, base2, s1, s2 = workload(seed=43)
        index = DeltaIndex(base1, base2)
        index.apply_delta(
            GraphDelta.build(
                added_edges1=[("m-new", s1[0][0]), ("a-new", "z-new")],
                added_nodes2=["iso"],
            )
        )
        rank1 = index.rank1.copy()
        rank2 = index.rank2.copy()
        unrank1 = index.unrank1.copy()
        index._recompute_ranks()
        assert (index.rank1 == rank1).all()
        assert (index.rank2 == rank2).all()
        assert (index.unrank1 == unrank1).all()

    def test_noop_warm_resume_keeps_phases_and_progress(self, tmp_path):
        """Re-running identical inputs through warm_start must still
        honor the phases/progress contract of run()."""
        pair, seeds, *_rest = workload(seed=47)
        ck = tmp_path / "m.npz"
        cfg = MatcherConfig(
            threshold=2, checkpoint_path=str(ck), warm_start=True
        )
        matcher = UserMatching(cfg)
        first = matcher.run(pair.g1, pair.g2, seeds)
        events = []
        second = matcher.run(pair.g1, pair.g2, seeds, progress=events.append)
        assert second.links == first.links
        assert second.phases == first.phases
        assert len(second.phases) > 0
        assert len(events) == len(second.phases)
