"""Unit tests for :class:`repro.incremental.delta_index.DeltaIndex`."""

import numpy as np
import pytest

from repro.generators.erdos_renyi import gnp_graph
from repro.graphs.graph import Graph
from repro.graphs.pair_index import GraphPairIndex
from repro.incremental.delta import GraphDelta
from repro.incremental.delta_index import DeltaIndex


def small_pair():
    g1 = Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
    g2 = Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
    return g1, g2


def assert_matches_fresh(index: DeltaIndex):
    """The merged view must equal a from-scratch canonical interning."""
    fresh = GraphPairIndex(index.g1, index.g2)
    # Same node universe (possibly different dense order after appends).
    assert {index.node1(d) for d in range(index.n1)} == set(
        fresh.csr1.node_ids
    )
    assert {index.node2(d) for d in range(index.n2)} == set(
        fresh.csr2.node_ids
    )
    for side, nbrs, graph in (
        (1, index.neighbors1, index.g1),
        (2, index.neighbors2, index.g2),
    ):
        node_of = index.node1 if side == 1 else index.node2
        n = index.n1 if side == 1 else index.n2
        dense_of = index.dense1 if side == 1 else index.dense2
        for d in range(n):
            expected = {dense_of(v) for v in graph.neighbors(node_of(d))}
            assert set(nbrs(d).tolist()) == expected
    # Degrees and canonical ranks stay consistent.
    for d in range(index.n1):
        assert index.deg1[d] == index.g1.degree(index.node1(d))
    rank_order = sorted(range(index.n1), key=lambda d: index.rank1[d])
    from repro.core.ordering import node_sort_key

    assert [index.node1(d) for d in rank_order] == sorted(
        (index.node1(d) for d in range(index.n1)), key=node_sort_key
    )


class TestDeltaIndex:
    def test_fresh_index_is_compact_and_canonical(self):
        g1, g2 = small_pair()
        index = DeltaIndex(g1, g2)
        assert index.is_compact
        # Fresh interning is canonical: ranks are the identity.
        assert np.array_equal(index.rank1, np.arange(index.n1))
        fresh = GraphPairIndex(g1, g2)
        assert index.csr1.node_ids == fresh.csr1.node_ids
        assert np.array_equal(index.csr1.indptr, fresh.csr1.indptr)
        assert np.array_equal(index.csr1.indices, fresh.csr1.indices)

    def test_uint32_indices(self):
        g1, g2 = small_pair()
        index = DeltaIndex(g1, g2)
        assert index.csr1.indices.dtype == np.uint32
        index.apply_delta(GraphDelta.build(added_edges1=[(1, 3)]))
        index.compact()
        assert index.csr1.indices.dtype == np.uint32

    def test_apply_add_and_remove(self):
        g1, g2 = small_pair()
        index = DeltaIndex(g1, g2)
        applied = index.apply_delta(
            GraphDelta.build(
                added_edges1=[(1, 3)], removed_edges2=[(2, 3)]
            )
        )
        assert not index.is_compact
        assert set(applied.changed1.tolist()) == {
            index.dense1(1),
            index.dense1(3),
        }
        assert_matches_fresh(index)

    def test_snapshot_preserves_old_neighbors(self):
        g1, g2 = small_pair()
        index = DeltaIndex(g1, g2)
        d1 = index.dense1(1)
        before = set(index.neighbors1(d1).tolist())
        applied = index.apply_delta(GraphDelta.build(added_edges1=[(1, 3)]))
        assert set(applied.old_neighbors1[d1].tolist()) == before
        assert set(index.neighbors1(d1).tolist()) == before | {index.dense1(3)}

    def test_new_nodes_appended_not_reinterned(self):
        g1, g2 = small_pair()
        index = DeltaIndex(g1, g2)
        old_ids = [index.node1(d) for d in range(index.n1)]
        index.apply_delta(
            GraphDelta.build(added_edges1=[("zz", 0), ("aa", 1)])
        )
        # Existing dense ids are untouched; new nodes go at the end.
        assert [index.node1(d) for d in range(len(old_ids))] == old_ids
        appended = {index.node1(d) for d in range(len(old_ids), index.n1)}
        assert appended == {"aa", "zz"}
        # Ranks still reflect the canonical (sorted) order.
        assert_matches_fresh(index)

    def test_compact_preserves_dense_ids_and_content(self):
        g1, g2 = small_pair()
        index = DeltaIndex(g1, g2)
        index.apply_delta(
            GraphDelta.build(
                added_edges1=[(1, 3), ("n", 2)],
                removed_edges1=[(0, 2)],
                added_edges2=[(0, 2)],
            )
        )
        ids_before = [index.node1(d) for d in range(index.n1)]
        nbrs_before = {
            d: sorted(index.neighbors1(d).tolist())
            for d in range(index.n1)
        }
        index.compact()
        assert index.is_compact
        assert [index.node1(d) for d in range(index.n1)] == ids_before
        for d, expected in nbrs_before.items():
            assert sorted(index.neighbors1(d).tolist()) == expected
        assert_matches_fresh(index)

    def test_add_then_remove_same_edge_cancels(self):
        g1, g2 = small_pair()
        index = DeltaIndex(g1, g2)
        index.apply_delta(GraphDelta.build(added_edges1=[(1, 3)]))
        index.apply_delta(GraphDelta.build(removed_edges1=[(1, 3)]))
        assert_matches_fresh(index)

    def test_gather_neighbors_matches_loop(self):
        g = gnp_graph(40, 0.15, seed=3)
        h = gnp_graph(40, 0.15, seed=4)
        index = DeltaIndex(g, h)
        index.apply_delta(
            GraphDelta.build(
                added_edges1=[(0, 39), ("x", 5)],
                removed_edges1=[next(iter(g.edges()))]
                if g.num_edges
                else [],
            )
        )
        targets = np.asarray([0, 5, index.dense1("x"), 7, 0], dtype=np.int64)
        vals, seg = index.gather_neighbors1(targets)
        for pos in range(len(targets)):
            got = sorted(vals[seg == pos].tolist())
            want = sorted(index.neighbors1(int(targets[pos])).tolist())
            assert got == want

    def test_maybe_compact_threshold(self):
        g1, g2 = small_pair()
        index = DeltaIndex(g1, g2, compact_ratio=0.0, compact_min_edges=1)
        index.apply_delta(
            GraphDelta.build(added_edges1=[(1, 3)], added_edges2=[(0, 2)])
        )
        assert index.maybe_compact()
        assert index.is_compact

    def test_random_delta_sequence_stays_consistent(self):
        import random

        rng = random.Random(9)
        g1 = gnp_graph(30, 0.12, seed=1)
        g2 = gnp_graph(30, 0.12, seed=2)
        index = DeltaIndex(g1, g2)
        for step in range(6):
            candidates = [
                (u, v)
                for u in range(30)
                for v in range(u + 1, 30)
                if not g1.has_edge(u, v)
            ]
            add = rng.sample(candidates, k=min(4, len(candidates)))
            present = sorted(g1.edges())
            rm = [present[rng.randrange(len(present))]]
            index.apply_delta(
                GraphDelta.build(
                    added_edges1=add, removed_edges1=rm
                )
            )
            if step == 3:
                index.compact()
        assert_matches_fresh(index)
