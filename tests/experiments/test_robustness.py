"""Tests for the extension robustness experiments (tiny scale)."""

import pytest

from repro.experiments import robustness


class TestNoiseEdges:
    def test_rows_and_graceful_degradation(self):
        result = robustness.run_noise_edges(
            n=1200, noise_fractions=(0.0, 0.2), seed=1
        )
        assert len(result.rows) == 2
        clean, noisy = result.rows
        # Tiny instances are noise-sensitive (few witnesses per node);
        # the bench at n=5000 asserts the tight bound.
        assert noisy["recall"] > 0.5
        assert noisy["good"] > 0


class TestVertexDeletion:
    def test_identifiable_shrinks(self):
        result = robustness.run_vertex_deletion(
            n=1200, deletion_probs=(0.0, 0.3), seed=1
        )
        full, deleted = result.rows
        assert deleted["identifiable"] < full["identifiable"]


class TestNoisySeeds:
    def test_output_error_bounded(self):
        result = robustness.run_noisy_seeds(
            n=1500, error_rates=(0.0, 0.2), seed=1
        )
        clean, noisy = result.rows
        # Output error rises but stays well under the input error.
        assert noisy["new_error_%"] < 20.0
        assert noisy["good"] > 0.8 * clean["good"]


class TestScaleTrend:
    def test_error_decays(self):
        result = robustness.run_scale_trend(ns=(1000, 4000), seed=1)
        small, large = result.rows
        assert large["error_%"] <= small["error_%"] + 0.1
        assert large["recall"] >= small["recall"] - 0.05


class TestSmallWorld:
    def test_hard_substrate_reported_honestly(self):
        result = robustness.run_small_world(n=1000, seed=1)
        assert {r["bucketing"] for r in result.rows} == {"on", "off"}
        for row in result.rows:
            assert row["recall"] < 0.8  # genuinely hard case


class TestCliIntegration:
    def test_robustness_experiments_registered(self):
        from repro.cli import EXPERIMENTS

        for name in (
            "robustness-noise",
            "robustness-vertex-deletion",
            "robustness-noisy-seeds",
            "robustness-scale",
            "robustness-small-world",
        ):
            assert name in EXPERIMENTS
