"""Tests for the percolation and theory-validation experiments."""

import pytest

from repro.experiments import percolation, theory_validation


class TestPercolation:
    @pytest.fixture(scope="class")
    def result(self):
        return percolation.run(n=2000, m=12, seed_counts=(5, 60, 150), seed=1)

    def test_recall_monotone_in_seed_count(self, result):
        recalls = [r["recall"] for r in result.rows]
        assert recalls == sorted(recalls)

    def test_transition_exists(self, result):
        """Few seeds fizzle; enough seeds saturate."""
        assert result.rows[0]["recall"] < 0.2
        assert result.rows[-1]["recall"] > 0.6

    def test_seed_counts_respected(self, result):
        assert [r["seed_count"] for r in result.rows] == [5, 60, 150]

    def test_count_capped_at_population(self):
        result = percolation.run(
            n=300, m=8, seed_counts=(10 ** 6,), seed=1
        )
        assert result.rows[0]["seed_count"] <= 300


class TestTheoryValidation:
    @pytest.fixture(scope="class")
    def result(self):
        return theory_validation.run(seed=1)

    def test_two_rows(self, result):
        assert len(result.rows) == 2

    def test_measured_close_to_predicted(self, result):
        for row in result.rows:
            measured = row["measured_mean"]
            predicted = row["predicted_mean"]
            assert measured == pytest.approx(predicted, rel=0.35, abs=0.2)

    def test_gap_between_correct_and_wrong(self, result):
        correct, wrong = result.rows
        assert correct["measured_mean"] > 5 * wrong["measured_mean"]

    def test_wrong_pairs_rarely_reach_threshold(self, result):
        wrong = result.rows[1]
        frac_key = next(k for k in wrong if k.startswith("frac"))
        assert wrong[frac_key] < 0.02
