"""Determinism regression: same seed ⇒ identical harness rows.

Two invariants, checked on the fig2 and table2 drivers at tiny scale:

- **repeatability** — running a driver twice with the same RNG seed
  yields identical rows (modulo wall-clock columns);
- **worker independence** — rows are also identical across worker
  counts and backends, because ``workers`` and ``backend`` only change
  *how* the links are computed, never *which* links.

Wall-clock columns (``elapsed_s`` and table2's derived
``relative_time``) are the only legitimate run-to-run variation and are
stripped before comparison.
"""

import pytest

from repro.experiments import fig2_pa, table2_rmat

#: Timing-derived columns excluded from row equality.
TIMING_COLUMNS = frozenset({"elapsed_s", "relative_time"})

FIG2_MICRO = dict(
    n=300,
    m=4,
    seed_probs=(0.05, 0.2),
    thresholds=(1, 2),
    iterations=1,
)
TABLE2_MICRO = dict(scales=(6, 7), edge_factor=8)


def stable_rows(result):
    """Driver rows with timing columns removed."""
    return [
        {k: v for k, v in row.items() if k not in TIMING_COLUMNS}
        for row in result.rows
    ]


@pytest.mark.parametrize(
    "driver, micro",
    [(fig2_pa.run, FIG2_MICRO), (table2_rmat.run, TABLE2_MICRO)],
    ids=["fig2", "table2"],
)
class TestDriverDeterminism:
    def test_repeated_runs_identical(self, driver, micro):
        a = driver(seed=7, **micro)
        b = driver(seed=7, **micro)
        assert stable_rows(a) == stable_rows(b)

    def test_rows_identical_across_worker_counts(self, driver, micro):
        serial = driver(seed=7, backend="csr", workers=1, **micro)
        parallel = driver(seed=7, backend="csr", workers=3, **micro)
        assert stable_rows(serial) == stable_rows(parallel)

    def test_rows_identical_across_backends(self, driver, micro):
        """The existing dict↔csr guarantee holds with workers on top."""
        ref = driver(seed=7, backend="dict", **micro)
        par = driver(seed=7, backend="csr", workers=2, **micro)
        assert stable_rows(ref) == stable_rows(par)

    def test_different_seeds_differ(self, driver, micro):
        """Sanity: the stable columns do carry seed-dependent signal."""
        a = driver(seed=7, **micro)
        b = driver(seed=8, **micro)
        assert stable_rows(a) != stable_rows(b)
