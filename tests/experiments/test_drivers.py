"""Smoke + shape tests for every experiment driver at tiny scale."""

import pytest

from repro.experiments import (
    ablation,
    attack,
    fig2_pa,
    fig3_cascade,
    fig4_degree,
    table2_rmat,
    table3_fb_enron,
    table4_affiliation,
    table5_realworld,
)
from repro.experiments.common import ExperimentResult


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return fig2_pa.run(
            n=1200,
            m=10,
            seed_probs=(0.05, 0.15),
            thresholds=(2, 3),
            iterations=2,
            seed=1,
        )

    def test_rows_cover_grid(self, result):
        assert len(result.rows) == 4

    def test_precision_high(self, result):
        # At n=1200 (1/800 of the paper's scale) a little residual error
        # is expected; the bench-scale run in EXPERIMENTS.md is >= 0.99.
        assert all(r["precision"] > 0.85 for r in result.rows)

    def test_recall_increases_with_seeds(self, result):
        by_threshold = {}
        for row in result.rows:
            by_threshold.setdefault(row["threshold"], []).append(row)
        for rows in by_threshold.values():
            rows.sort(key=lambda r: r["seed_prob"])
            assert rows[-1]["recall"] >= rows[0]["recall"] - 0.02

    def test_lower_threshold_higher_recall(self, result):
        by_prob = {}
        for row in result.rows:
            by_prob.setdefault(row["seed_prob"], {})[
                row["threshold"]
            ] = row["recall"]
        for recalls in by_prob.values():
            assert recalls[2] >= recalls[3] - 0.02

    def test_table_renders(self, result):
        text = result.to_table()
        assert "fig2" in text
        assert "threshold" in text


class TestTable2:
    def test_relative_times_reported(self):
        result = table2_rmat.run(scales=(7, 8), seed=1)
        assert result.rows[0]["relative_time"] == 1.0
        assert result.rows[1]["nodes"] > result.rows[0]["nodes"]


class TestTable3:
    def test_facebook_error_low(self):
        result = table3_fb_enron.run_facebook(
            n=1200, seed_probs=(0.1,), thresholds=(2,), seed=1
        )
        row = result.rows[0]
        assert row["new_error_%"] < 5.0
        assert row["good"] > 100

    def test_enron_sparse_recall_limited(self):
        result = table3_fb_enron.run_enron(
            n=1200, thresholds=(3,), seed=1
        )
        row = result.rows[0]
        assert row["recall"] < 0.8  # sparsity bounds recall


class TestFig3:
    def test_cascade_high_precision(self):
        result = fig3_cascade.run(
            n=1500, seed_probs=(0.1,), thresholds=(2,), seed=1
        )
        row = result.rows[0]
        assert row["precision"] > 0.9
        assert row["recall"] > 0.8


class TestTable4:
    def test_affiliation_zero_ish_errors(self):
        result = table4_affiliation.run(
            n_users=500,
            n_interests=500,
            thresholds=(3,),
            iterations=2,
            seed=1,
        )
        row = result.rows[0]
        assert row["bad"] <= 0.05 * max(row["good"], 1)


class TestTable5:
    def test_dblp(self):
        result = table5_realworld.run_dblp(
            n_authors=1200,
            years=10,
            papers_per_year=120,
            thresholds=(2,),
            seed=1,
        )
        row = result.rows[0]
        assert row["good"] > 0
        # Tiny instances have thin witness support; the default-scale run
        # (EXPERIMENTS.md) sits under 2%.
        assert row["new_error_%"] < 50

    def test_gowalla(self):
        result = table5_realworld.run_gowalla(
            n_users=800, months=12, thresholds=(2,), seed=1
        )
        assert result.rows[0]["good"] > 0

    def test_wikipedia(self):
        result = table5_realworld.run_wikipedia(
            n_concepts=2500, thresholds=(3,), seed=1
        )
        row = result.rows[0]
        assert row["links_total"] > 0


class TestFig4:
    def test_recall_climbs_with_degree(self):
        result = fig4_degree.run(dataset="gowalla", threshold=2, seed=1)
        populated = [r for r in result.rows if r["identifiable"] >= 20]
        assert populated[-1]["recall"] >= populated[0]["recall"]

    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            fig4_degree.run(dataset="bogus")


class TestAttack:
    @pytest.fixture(scope="class")
    def result(self):
        return attack.run(n=1200, seed=1)

    def test_both_algorithms_reported(self, result):
        algos = {r["algorithm"] for r in result.rows}
        assert algos == {"user-matching", "common-neighbors"}

    def test_user_matching_high_precision_under_attack(self, result):
        um = next(r for r in result.rows if r["algorithm"] == "user-matching")
        assert um["precision"] > 0.9

    def test_baseline_lower_recall(self, result):
        um = next(r for r in result.rows if r["algorithm"] == "user-matching")
        cn = next(
            r
            for r in result.rows
            if r["algorithm"] == "common-neighbors"
        )
        assert cn["recall"] <= um["recall"] + 0.02


class TestAblation:
    def test_bucketing_rows(self):
        result = ablation.run_bucketing(n=1200, seed=1)
        assert len(result.rows) == 4
        forced = [r for r in result.rows if r["tie_policy"] == "lowest_id"]
        on = next(r for r in forced if r["bucketing"] == "on")
        off = next(r for r in forced if r["bucketing"] == "off")
        assert off["bad"] >= on["bad"]

    def test_iterations_monotone(self):
        result = ablation.run_iterations(n=1200, ks=(1, 2), seed=1)
        assert (
            result.rows[1]["good"] + result.rows[1]["bad"]
            >= result.rows[0]["good"] + result.rows[0]["bad"]
        )

    def test_tie_policy_rows(self):
        result = ablation.run_tie_policy(n=800, seed=1)
        assert {r["tie_policy"] for r in result.rows} == {
            "skip",
            "lowest_id",
        }

    def test_wikipedia_ablation(self):
        result = ablation.run_simple_on_wikipedia(n_concepts=2000, seed=1)
        assert len(result.rows) == 3


class TestExperimentResult:
    def test_columns_order(self):
        r = ExperimentResult(name="x", description="d")
        r.rows = [{"a": 1}, {"b": 2, "a": 3}]
        assert r.columns() == ["a", "b"]

    def test_empty_table(self):
        r = ExperimentResult(name="x", description="d")
        assert "(no rows)" in r.to_table()

    def test_notes_rendered(self):
        r = ExperimentResult(name="x", description="d", notes="hello")
        r.rows = [{"a": 1}]
        assert "hello" in r.to_table()
