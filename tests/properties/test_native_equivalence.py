"""dict↔csr↔native three-way equivalence: identical links everywhere.

``backend="native"`` swaps the numpy kernels for compiled C, but the
contract is bit-exactness: for every registry matcher, worker count, and
block plan, the native backend must produce exactly the same
``MatchingResult.links`` as both ``backend="dict"`` and
``backend="csr"``.  The forced-fallback classes additionally pin the
degradation contract — with the kill switch set (or no toolchain at
all), ``backend="native"`` still runs, warns exactly once per process,
and still matches the other two backends link-for-link.

Everything here passes whether or not a C compiler exists: when the
toolchain is missing the native runs *are* fallback runs, and the wall
degenerates to re-checking dict↔csr — still true, just not new.
"""

import os
import warnings
from unittest import mock

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.shards as shards
from repro.core.config import MatcherConfig
from repro.core.matcher import UserMatching
from repro.core.native import (
    NativeFallbackWarning,
    _reset_native_cache,
    native_available,
)
from repro.generators.erdos_renyi import gnp_graph
from repro.generators.preferential_attachment import (
    preferential_attachment_graph,
)
from repro.registry import get_matcher, matcher_names
from repro.sampling.edge_sampling import independent_copies
from repro.seeds.generators import sample_seeds

#: Registry-name -> extra config (same sweep as the dict↔csr wall).
MATCHER_CONFIGS: dict[str, dict] = {
    "user-matching": {"threshold": 2, "iterations": 2},
    "mapreduce-user-matching": {"threshold": 2, "iterations": 2},
    "common-neighbors": {},
    "reconciler": {"threshold": 2, "rounds": 2},
    "degree-sequence": {},
    "narayanan-shmatikov": {},
    "structural-features": {},
}

WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "3"))

#: Inflated per-pair cost so a 1 MiB budget forces multi-block rounds.
FORCED_PAIR_BYTES = 1 << 21

NATIVE = native_available()


def force_blocking():
    return mock.patch.object(shards, "WITNESS_PAIR_BYTES", FORCED_PAIR_BYTES)


def workload(n=220, m=4, s=0.6, link_prob=0.1, seed=0):
    g = preferential_attachment_graph(n, m, seed=seed)
    pair = independent_copies(g, s, seed=seed + 1)
    seeds = sample_seeds(pair, link_prob, seed=seed + 2)
    return pair, seeds


@st.composite
def gnp_workload(draw):
    n = draw(st.integers(30, 100))
    p = draw(st.floats(0.03, 0.15))
    s = draw(st.floats(0.4, 0.9))
    link_prob = draw(st.floats(0.05, 0.3))
    seed = draw(st.integers(0, 10_000))
    g = gnp_graph(n, p, seed=seed)
    pair = independent_copies(g, s, seed=seed + 1)
    seeds = sample_seeds(pair, link_prob, seed=seed + 2)
    return pair, seeds


def run_backend(name, backend, seeds, pair, **config):
    """One matcher run with NativeFallbackWarning escalated to error.

    A surprise fallback inside a test that believes it is exercising the
    compiled path would silently weaken the wall — so when the toolchain
    exists, any fallback warning fails the test.
    """
    with warnings.catch_warnings():
        if NATIVE and backend == "native":
            warnings.simplefilter("error", NativeFallbackWarning)
        elif backend == "native":
            warnings.simplefilter("ignore", NativeFallbackWarning)
        matcher = get_matcher(name, backend=backend, **config)
        return matcher.run(pair.g1, pair.g2, seeds)


class TestThreeWayRegistrySweep:
    def test_sweep_covers_registry(self):
        assert sorted(MATCHER_CONFIGS) == matcher_names()

    @pytest.mark.parametrize("name", sorted(MATCHER_CONFIGS))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_links_identical_three_ways(self, name, seed):
        pair, seeds = workload(seed=seed * 100)
        config = MATCHER_CONFIGS[name]
        ref = run_backend(name, "dict", seeds, pair, **config)
        csr = run_backend(name, "csr", seeds, pair, **config)
        nat = run_backend(name, "native", seeds, pair, **config)
        assert csr.links == ref.links
        assert nat.links == ref.links
        assert nat.seeds == ref.seeds

    @pytest.mark.parametrize("name", sorted(MATCHER_CONFIGS))
    def test_links_identical_with_workers(self, name):
        pair, seeds = workload(seed=300)
        config = dict(MATCHER_CONFIGS[name], workers=WORKERS)
        csr = run_backend(name, "csr", seeds, pair, **config)
        nat = run_backend(name, "native", seeds, pair, **config)
        assert nat.links == csr.links

    @pytest.mark.parametrize("name", sorted(MATCHER_CONFIGS))
    def test_links_identical_forced_multi_block(self, name):
        pair, seeds = workload(seed=400)
        config = dict(MATCHER_CONFIGS[name], memory_budget_mb=1)
        ref = run_backend(name, "dict", seeds, pair, **MATCHER_CONFIGS[name])
        with force_blocking():
            csr = run_backend(name, "csr", seeds, pair, **config)
            nat = run_backend(name, "native", seeds, pair, **config)
        assert csr.links == ref.links
        assert nat.links == ref.links

    def test_blocked_and_workers_compose_natively(self):
        pair, seeds = workload(seed=500)
        config = {
            "threshold": 2,
            "iterations": 2,
            "memory_budget_mb": 1,
            "workers": WORKERS,
        }
        ref = run_backend(
            "user-matching", "dict", seeds, pair, threshold=2, iterations=2
        )
        with force_blocking():
            nat = run_backend("user-matching", "native", seeds, pair,
                              **config)
        assert nat.links == ref.links


class TestNativeProperties:
    @given(gnp_workload())
    @settings(max_examples=15, deadline=None)
    def test_user_matching_three_ways_on_random_graphs(self, wl):
        pair, seeds = wl
        ref = UserMatching(
            MatcherConfig(threshold=2, iterations=2)
        ).run(pair.g1, pair.g2, seeds)
        for backend in ("csr", "native"):
            got = UserMatching(
                MatcherConfig(threshold=2, iterations=2, backend=backend)
            ).run(pair.g1, pair.g2, seeds)
            assert got.links == ref.links, backend

    @given(gnp_workload())
    @settings(max_examples=8, deadline=None)
    def test_reconciler_selectors_three_ways(self, wl):
        pair, seeds = wl
        for selector in ("mutual-best", "greedy", "gale-shapley"):
            ref = get_matcher(
                "reconciler", selector=selector, backend="dict"
            ).run(pair.g1, pair.g2, seeds)
            nat = get_matcher(
                "reconciler", selector=selector, backend="native"
            ).run(pair.g1, pair.g2, seeds)
            assert nat.links == ref.links, selector


class TestForcedFallback:
    """REPRO_NATIVE_DISABLE=1 must degrade, warn once, and stay exact."""

    @pytest.fixture(autouse=True)
    def killed_native(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        _reset_native_cache()
        yield
        _reset_native_cache()

    def test_run_warns_and_matches(self):
        pair, seeds = workload(seed=600)
        ref = UserMatching(
            MatcherConfig(threshold=2, iterations=2, backend="csr")
        ).run(pair.g1, pair.g2, seeds)
        with pytest.warns(NativeFallbackWarning) as caught:
            got = UserMatching(
                MatcherConfig(threshold=2, iterations=2, backend="native")
            ).run(pair.g1, pair.g2, seeds)
        assert got.links == ref.links
        fallbacks = [
            w for w in caught if issubclass(w.category, NativeFallbackWarning)
        ]
        assert len(fallbacks) == 1

    def test_fallback_with_workers_and_blocking(self):
        pair, seeds = workload(seed=700)
        ref = UserMatching(
            MatcherConfig(threshold=2, iterations=2, backend="csr")
        ).run(pair.g1, pair.g2, seeds)
        with force_blocking(), pytest.warns(NativeFallbackWarning):
            got = UserMatching(
                MatcherConfig(
                    threshold=2,
                    iterations=2,
                    backend="native",
                    workers=WORKERS,
                    memory_budget_mb=1,
                )
            ).run(pair.g1, pair.g2, seeds)
        assert got.links == ref.links

    def test_reconciler_fallback_matches(self):
        pair, seeds = workload(seed=800)
        ref = get_matcher(
            "reconciler", threshold=2, rounds=2, backend="csr"
        ).run(pair.g1, pair.g2, seeds)
        with pytest.warns(NativeFallbackWarning):
            got = get_matcher(
                "reconciler", threshold=2, rounds=2, backend="native"
            ).run(pair.g1, pair.g2, seeds)
        assert got.links == ref.links
