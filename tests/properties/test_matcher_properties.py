"""Property-based tests for matcher and sampler invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import MatcherConfig
from repro.core.matcher import UserMatching
from repro.generators.erdos_renyi import gnp_graph
from repro.sampling.edge_sampling import independent_copies, sample_edges
from repro.seeds.generators import sample_seeds


@st.composite
def matching_workload(draw):
    n = draw(st.integers(30, 120))
    p = draw(st.floats(0.03, 0.15))
    s = draw(st.floats(0.4, 0.9))
    l = draw(st.floats(0.05, 0.3))
    seed = draw(st.integers(0, 10_000))
    g = gnp_graph(n, p, seed=seed)
    pair = independent_copies(g, s, seed=seed + 1)
    seeds = sample_seeds(pair, l, seed=seed + 2)
    return pair, seeds


class TestSamplerProperties:
    @given(
        st.integers(20, 120),
        st.floats(0.0, 0.3),
        st.floats(0.0, 1.0),
        st.integers(0, 9999),
    )
    @settings(max_examples=40, deadline=None)
    def test_sampled_edges_subset(self, n, p, s, seed):
        g = gnp_graph(n, p, seed=seed)
        sampled = sample_edges(g, s, seed=seed + 1)
        assert sampled.num_nodes == g.num_nodes
        assert sampled.num_edges <= g.num_edges
        for u, v in sampled.edges():
            assert g.has_edge(u, v)

    @given(matching_workload())
    @settings(max_examples=25, deadline=None)
    def test_identity_consistency(self, workload):
        pair, _seeds = workload
        for v1, v2 in pair.identity.items():
            assert pair.g1.has_node(v1)
            assert pair.g2.has_node(v2)
        values = list(pair.identity.values())
        assert len(set(values)) == len(values)


class TestMatcherProperties:
    @given(matching_workload(), st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_links_superset_of_seeds_and_injective(self, workload, threshold):
        pair, seeds = workload
        result = UserMatching(
            MatcherConfig(threshold=threshold, iterations=2)
        ).run(pair.g1, pair.g2, seeds)
        for v1, v2 in seeds.items():
            assert result.links[v1] == v2
        values = list(result.links.values())
        assert len(set(values)) == len(values)

    @given(matching_workload())
    @settings(max_examples=20, deadline=None)
    def test_links_reference_existing_nodes(self, workload):
        pair, seeds = workload
        result = UserMatching(MatcherConfig(iterations=2)).run(
            pair.g1, pair.g2, seeds
        )
        for v1, v2 in result.links.items():
            assert pair.g1.has_node(v1)
            assert pair.g2.has_node(v2)

    @given(matching_workload())
    @settings(max_examples=15, deadline=None)
    def test_threshold_monotone_link_count(self, workload):
        pair, seeds = workload
        low = UserMatching(
            MatcherConfig(threshold=2, iterations=1)
        ).run(pair.g1, pair.g2, seeds)
        high = UserMatching(
            MatcherConfig(threshold=5, iterations=1)
        ).run(pair.g1, pair.g2, seeds)
        assert len(high.links) <= len(low.links)

    @given(matching_workload())
    @settings(max_examples=15, deadline=None)
    def test_phase_accounting_consistent(self, workload):
        pair, seeds = workload
        result = UserMatching(MatcherConfig(iterations=2)).run(
            pair.g1, pair.g2, seeds
        )
        assert (
            sum(p.links_added for p in result.phases)
            == result.num_new_links
        )
        assert all(p.witnesses_emitted >= 0 for p in result.phases)
