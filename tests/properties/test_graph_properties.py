"""Property-based tests (hypothesis) for graph invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.graph import Graph
from repro.graphs.ops import induced_subgraph, intersection, relabel, union

edge_lists = st.lists(
    st.tuples(st.integers(0, 30), st.integers(0, 30)).filter(
        lambda e: e[0] != e[1]
    ),
    max_size=120,
)


def build(edges) -> Graph:
    return Graph.from_edges(edges)


class TestGraphInvariants:
    @given(edge_lists)
    @settings(max_examples=60, deadline=None)
    def test_handshake_lemma(self, edges):
        g = build(edges)
        assert sum(g.degree(n) for n in g.nodes()) == 2 * g.num_edges

    @given(edge_lists)
    @settings(max_examples=60, deadline=None)
    def test_edges_iteration_consistent(self, edges):
        g = build(edges)
        listed = list(g.edges())
        assert len(listed) == g.num_edges
        for u, v in listed:
            assert g.has_edge(u, v)
            assert g.has_edge(v, u)

    @given(edge_lists)
    @settings(max_examples=60, deadline=None)
    def test_copy_equals_original(self, edges):
        g = build(edges)
        assert g.copy() == g

    @given(edge_lists)
    @settings(max_examples=40, deadline=None)
    def test_remove_all_edges_leaves_nodes(self, edges):
        g = build(edges)
        nodes = g.num_nodes
        for u, v in list(g.edges()):
            g.remove_edge(u, v)
        assert g.num_edges == 0
        assert g.num_nodes == nodes


class TestOpsInvariants:
    @given(edge_lists)
    @settings(max_examples=40, deadline=None)
    def test_induced_subgraph_monotone(self, edges):
        g = build(edges)
        nodes = [n for n in g.nodes() if isinstance(n, int) and n < 15]
        sub = induced_subgraph(g, nodes)
        assert sub.num_edges <= g.num_edges
        for u, v in sub.edges():
            assert g.has_edge(u, v)

    @given(edge_lists, edge_lists)
    @settings(max_examples=40, deadline=None)
    def test_intersection_commutative(self, e1, e2):
        a, b = build(e1), build(e2)
        assert intersection(a, b) == intersection(b, a)

    @given(edge_lists, edge_lists)
    @settings(max_examples=40, deadline=None)
    def test_intersection_subset_of_union(self, e1, e2):
        a, b = build(e1), build(e2)
        inter = intersection(a, b)
        uni = union(a, b)
        for u, v in inter.edges():
            assert uni.has_edge(u, v)

    @given(edge_lists)
    @settings(max_examples=40, deadline=None)
    def test_self_intersection_identity(self, edges):
        g = build(edges)
        assert intersection(g, g) == g

    @given(edge_lists)
    @settings(max_examples=40, deadline=None)
    def test_relabel_round_trip(self, edges):
        g = build(edges)
        fwd = {n: ("x", n) for n in g.nodes()}
        back = {("x", n): n for n in g.nodes()}
        assert relabel(relabel(g, fwd), back) == g

    @given(edge_lists)
    @settings(max_examples=40, deadline=None)
    def test_union_contains_both(self, edges):
        g = build(edges)
        assert union(g, Graph()) == g
