"""dict↔csr backend equivalence: identical links for every matcher.

The array backend is a pure representation refactor — for any workload
and any registered matcher, ``backend="csr"`` must produce exactly the
same ``MatchingResult.links`` as ``backend="dict"``.  These tests pin
that down on randomized graphs (hypothesis-driven G(n, p) workloads plus
seeded preferential-attachment spot checks) for all seven registry
matchers and both tie policies.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import MatcherConfig, TiePolicy
from repro.core.matcher import UserMatching
from repro.generators.erdos_renyi import gnp_graph
from repro.generators.preferential_attachment import (
    preferential_attachment_graph,
)
from repro.registry import get_matcher, matcher_names
from repro.sampling.edge_sampling import independent_copies
from repro.seeds.generators import sample_seeds

#: Registry-name -> extra config used in the all-matchers sweep (chosen
#: so every matcher actually links something at test scale).
MATCHER_CONFIGS: dict[str, dict] = {
    "user-matching": {"threshold": 2, "iterations": 2},
    "mapreduce-user-matching": {"threshold": 2, "iterations": 2},
    "common-neighbors": {},
    "reconciler": {"threshold": 2, "rounds": 2},
    "degree-sequence": {},
    "narayanan-shmatikov": {},
    "structural-features": {},
}


def workload(n=260, m=4, s=0.6, link_prob=0.1, seed=0):
    g = preferential_attachment_graph(n, m, seed=seed)
    pair = independent_copies(g, s, seed=seed + 1)
    seeds = sample_seeds(pair, link_prob, seed=seed + 2)
    return pair, seeds


@st.composite
def gnp_workload(draw):
    n = draw(st.integers(30, 120))
    p = draw(st.floats(0.03, 0.15))
    s = draw(st.floats(0.4, 0.9))
    link_prob = draw(st.floats(0.05, 0.3))
    seed = draw(st.integers(0, 10_000))
    g = gnp_graph(n, p, seed=seed)
    pair = independent_copies(g, s, seed=seed + 1)
    seeds = sample_seeds(pair, link_prob, seed=seed + 2)
    return pair, seeds


class TestRegistrySweep:
    def test_every_matcher_accepts_both_backends(self):
        """The config sweep covers the whole registry."""
        assert sorted(MATCHER_CONFIGS) == matcher_names()

    @pytest.mark.parametrize("name", sorted(MATCHER_CONFIGS))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_links_identical_on_pa_workloads(self, name, seed):
        pair, seeds = workload(seed=seed * 100)
        config = MATCHER_CONFIGS[name]
        ref = get_matcher(name, backend="dict", **config).run(
            pair.g1, pair.g2, seeds
        )
        csr = get_matcher(name, backend="csr", **config).run(
            pair.g1, pair.g2, seeds
        )
        assert csr.links == ref.links
        assert csr.seeds == ref.seeds


class TestUserMatchingProperties:
    @given(gnp_workload(), st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_links_identical_over_thresholds(self, wl, threshold):
        pair, seeds = wl
        ref = UserMatching(
            MatcherConfig(threshold=threshold, iterations=2)
        ).run(pair.g1, pair.g2, seeds)
        csr = UserMatching(
            MatcherConfig(
                threshold=threshold, iterations=2, backend="csr"
            )
        ).run(pair.g1, pair.g2, seeds)
        assert csr.links == ref.links

    @given(gnp_workload())
    @settings(max_examples=15, deadline=None)
    def test_links_identical_lowest_id_and_unbucketed(self, wl):
        pair, seeds = wl
        for kwargs in (
            {"tie_policy": TiePolicy.LOWEST_ID},
            {"use_degree_buckets": False},
            {"min_bucket_exponent": 0, "threshold": 1},
        ):
            ref = UserMatching(MatcherConfig(**kwargs)).run(
                pair.g1, pair.g2, seeds
            )
            csr = UserMatching(
                MatcherConfig(backend="csr", **kwargs)
            ).run(pair.g1, pair.g2, seeds)
            assert csr.links == ref.links, kwargs

    @given(gnp_workload())
    @settings(max_examples=10, deadline=None)
    def test_phase_accounting_consistent_on_csr(self, wl):
        """The csr backend keeps the MatchingResult invariants."""
        pair, seeds = wl
        result = UserMatching(
            MatcherConfig(iterations=2, backend="csr")
        ).run(pair.g1, pair.g2, seeds)
        assert (
            sum(p.links_added for p in result.phases)
            == result.num_new_links
        )
        values = list(result.links.values())
        assert len(set(values)) == len(values)
        for v1, v2 in seeds.items():
            assert result.links[v1] == v2


class TestBaselineProperties:
    @given(gnp_workload())
    @settings(max_examples=10, deadline=None)
    def test_baselines_identical_on_random_graphs(self, wl):
        pair, seeds = wl
        for name in (
            "common-neighbors",
            "degree-sequence",
            "narayanan-shmatikov",
            "structural-features",
        ):
            ref = get_matcher(name, backend="dict").run(
                pair.g1, pair.g2, seeds
            )
            csr = get_matcher(name, backend="csr").run(pair.g1, pair.g2, seeds)
            assert csr.links == ref.links, name

    @given(gnp_workload())
    @settings(max_examples=8, deadline=None)
    def test_reconciler_selectors_identical(self, wl):
        pair, seeds = wl
        for selector in ("mutual-best", "greedy", "gale-shapley"):
            ref = get_matcher(
                "reconciler", selector=selector, backend="dict"
            ).run(pair.g1, pair.g2, seeds)
            csr = get_matcher(
                "reconciler", selector=selector, backend="csr"
            ).run(pair.g1, pair.g2, seeds)
            assert csr.links == ref.links, selector


class TestStringIds:
    def test_mixed_hashable_node_ids(self):
        """Interning handles non-integer ids; links still identical."""
        pair, seeds = workload(n=150, seed=7)
        relabel1 = {v: f"u{v}" for v in pair.g1.nodes()}
        relabel2 = {v: (v, "right") for v in pair.g2.nodes()}
        from repro.graphs.graph import Graph

        h1 = Graph.from_edges(
            ((relabel1[u], relabel1[v]) for u, v in pair.g1.edges()),
            nodes=(relabel1[v] for v in pair.g1.nodes()),
        )
        h2 = Graph.from_edges(
            ((relabel2[u], relabel2[v]) for u, v in pair.g2.edges()),
            nodes=(relabel2[v] for v in pair.g2.nodes()),
        )
        str_seeds = {relabel1[v1]: relabel2[v2] for v1, v2 in seeds.items()}
        ref = UserMatching(MatcherConfig(threshold=2)).run(h1, h2, str_seeds)
        csr = UserMatching(
            MatcherConfig(threshold=2, backend="csr")
        ).run(h1, h2, str_seeds)
        assert csr.links == ref.links
        assert len(csr.links) >= len(str_seeds)
