"""blocked↔monolithic equivalence: identical links under any budget.

``memory_budget_mb`` is a pure execution knob — for any workload, any
registered matcher, either backend, and any worker count, running under
a memory budget must produce exactly the same ``MatchingResult.links``
as the monolithic (unbudgeted) run.  Real budgets dwarf test-scale
workloads, so these tests inflate
:data:`repro.core.shards.WITNESS_PAIR_BYTES` to force genuinely
multi-block plans; the plans themselves are asserted multi-block where
it matters so the suite can never silently degenerate into comparing
the monolithic path with itself.

Coverage: the full 7-matcher registry sweep on both backends at
workers 1 and 3 (``blocked x workers`` composition included),
hypothesis-driven G(n, p) workloads for User-Matching, and the planner
edge cases (single link, oversized hub block, no seeds, dict backend
accepting the knob as a no-op).
"""

import os
from unittest import mock

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.shards as shards
from repro.core.config import MatcherConfig, TiePolicy
from repro.core.matcher import UserMatching
from repro.generators.erdos_renyi import gnp_graph
from repro.generators.preferential_attachment import (
    preferential_attachment_graph,
)
from repro.graphs.pair_index import GraphPairIndex
from repro.registry import get_matcher, matcher_names
from repro.sampling.edge_sampling import independent_copies
from repro.seeds.generators import sample_seeds

#: Registry-name -> extra config used in the all-matchers sweep (chosen
#: so every matcher actually links something at test scale).
MATCHER_CONFIGS: dict[str, dict] = {
    "user-matching": {"threshold": 2, "iterations": 2},
    "mapreduce-user-matching": {"threshold": 2, "iterations": 2},
    "common-neighbors": {},
    "reconciler": {"threshold": 2, "rounds": 2},
    "degree-sequence": {},
    "narayanan-shmatikov": {},
    "structural-features": {},
}

WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "3"))

#: Inflated per-pair cost: a 1 MiB budget then allows only a handful of
#: estimated witness pairs per block, forcing multi-block rounds on
#: workloads this small.
FORCED_PAIR_BYTES = 1 << 21


def force_blocking():
    """Patch the planner's pair cost so budget=1 MiB splits rounds."""
    return mock.patch.object(shards, "WITNESS_PAIR_BYTES", FORCED_PAIR_BYTES)


def workload(n=220, m=4, s=0.6, link_prob=0.1, seed=0):
    g = preferential_attachment_graph(n, m, seed=seed)
    pair = independent_copies(g, s, seed=seed + 1)
    seeds = sample_seeds(pair, link_prob, seed=seed + 2)
    return pair, seeds


@st.composite
def gnp_workload(draw):
    n = draw(st.integers(30, 100))
    p = draw(st.floats(0.03, 0.15))
    s = draw(st.floats(0.4, 0.9))
    link_prob = draw(st.floats(0.05, 0.3))
    seed = draw(st.integers(0, 10_000))
    g = gnp_graph(n, p, seed=seed)
    pair = independent_copies(g, s, seed=seed + 1)
    seeds = sample_seeds(pair, link_prob, seed=seed + 2)
    return pair, seeds


def test_forced_blocking_actually_splits():
    """Guard: the inflated pair cost yields multi-block plans here."""
    pair, seeds = workload(seed=17)
    index = GraphPairIndex(pair.g1, pair.g2)
    link_l, link_r = index.intern_links(seeds)
    with force_blocking():
        plan = shards.plan_witness_blocks(index, link_l, link_r, 1)
    assert plan.num_blocks > 1


class TestRegistrySweep:
    def test_every_matcher_accepts_memory_budget(self):
        """The config sweep covers the whole registry."""
        assert sorted(MATCHER_CONFIGS) == matcher_names()

    @pytest.mark.parametrize("backend", ["dict", "csr"])
    @pytest.mark.parametrize("name", sorted(MATCHER_CONFIGS))
    def test_links_identical_under_budget(self, name, backend):
        """Budgeted runs at workers 1 and WORKERS match the monolith."""
        pair, seeds = workload(seed=17)
        config = MATCHER_CONFIGS[name]
        ref = get_matcher(
            name, backend=backend, workers=1, **config
        ).run(pair.g1, pair.g2, seeds)
        with force_blocking():
            for workers in (1, WORKERS):
                budgeted = get_matcher(
                    name,
                    backend=backend,
                    workers=workers,
                    memory_budget_mb=1,
                    **config,
                ).run(pair.g1, pair.g2, seeds)
                assert budgeted.links == ref.links, (name, workers)
                assert budgeted.seeds == ref.seeds, (name, workers)


class TestUserMatchingProperties:
    @given(gnp_workload(), st.integers(1, 4))
    @settings(max_examples=10, deadline=None)
    def test_links_identical_over_thresholds(self, wl, threshold):
        pair, seeds = wl
        ref = UserMatching(
            MatcherConfig(
                threshold=threshold, iterations=2, backend="csr"
            )
        ).run(pair.g1, pair.g2, seeds)
        with force_blocking():
            budgeted = UserMatching(
                MatcherConfig(
                    threshold=threshold,
                    iterations=2,
                    backend="csr",
                    memory_budget_mb=1,
                )
            ).run(pair.g1, pair.g2, seeds)
        assert budgeted.links == ref.links

    @given(gnp_workload(), st.sampled_from([1, WORKERS]))
    @settings(max_examples=6, deadline=None)
    def test_links_identical_with_workers(self, wl, workers):
        """blocked x workers composes without changing the links."""
        pair, seeds = wl
        ref = UserMatching(
            MatcherConfig(backend="csr")
        ).run(pair.g1, pair.g2, seeds)
        with force_blocking():
            budgeted = UserMatching(
                MatcherConfig(
                    backend="csr", workers=workers, memory_budget_mb=1
                )
            ).run(pair.g1, pair.g2, seeds)
        assert budgeted.links == ref.links

    @given(gnp_workload())
    @settings(max_examples=6, deadline=None)
    def test_phase_accounting_identical(self, wl):
        """Same per-round candidates/witness counts, not just links."""
        pair, seeds = wl
        ref = UserMatching(
            MatcherConfig(iterations=2, backend="csr")
        ).run(pair.g1, pair.g2, seeds)
        with force_blocking():
            budgeted = UserMatching(
                MatcherConfig(
                    iterations=2, backend="csr", memory_budget_mb=1
                )
            ).run(pair.g1, pair.g2, seeds)
        assert len(budgeted.phases) == len(ref.phases)
        for a, b in zip(budgeted.phases, ref.phases):
            assert a == b

    @given(gnp_workload())
    @settings(max_examples=6, deadline=None)
    def test_links_identical_lowest_id_and_unbucketed(self, wl):
        pair, seeds = wl
        for kwargs in (
            {"tie_policy": TiePolicy.LOWEST_ID},
            {"use_degree_buckets": False},
            {"min_bucket_exponent": 0, "threshold": 1},
        ):
            ref = UserMatching(
                MatcherConfig(backend="csr", **kwargs)
            ).run(pair.g1, pair.g2, seeds)
            with force_blocking():
                budgeted = UserMatching(
                    MatcherConfig(
                        backend="csr", memory_budget_mb=1, **kwargs
                    )
                ).run(pair.g1, pair.g2, seeds)
            assert budgeted.links == ref.links, kwargs


class TestBlockEdgeCases:
    def test_single_link_single_block(self):
        """One seed -> one block regardless of budget."""
        pair, seeds = workload(n=100, seed=3)
        one_seed = dict(list(seeds.items())[:1])
        base = dict(threshold=2, iterations=2, backend="csr")
        ref = UserMatching(MatcherConfig(**base)).run(
            pair.g1, pair.g2, one_seed
        )
        with force_blocking():
            budgeted = UserMatching(
                MatcherConfig(memory_budget_mb=1, **base)
            ).run(pair.g1, pair.g2, one_seed)
        assert budgeted.links == ref.links

    def test_no_seeds_at_all(self):
        pair, _ = workload(n=60, seed=9)
        cfg = MatcherConfig(backend="csr", memory_budget_mb=1)
        with force_blocking():
            result = UserMatching(cfg).run(pair.g1, pair.g2, {})
        assert result.links == {}

    def test_real_budget_without_patching(self):
        """An honest (large) budget is a no-op split, links identical."""
        pair, seeds = workload(seed=23)
        base = dict(threshold=2, iterations=1, backend="csr")
        ref = UserMatching(MatcherConfig(**base)).run(pair.g1, pair.g2, seeds)
        budgeted = UserMatching(
            MatcherConfig(memory_budget_mb=256, **base)
        ).run(pair.g1, pair.g2, seeds)
        assert budgeted.links == ref.links

    def test_dict_backend_accepts_knob_as_noop(self):
        pair, seeds = workload(n=120, seed=5)
        ref = UserMatching(MatcherConfig(backend="dict")).run(
            pair.g1, pair.g2, seeds
        )
        budgeted = UserMatching(
            MatcherConfig(backend="dict", memory_budget_mb=1)
        ).run(pair.g1, pair.g2, seeds)
        assert budgeted.links == ref.links
