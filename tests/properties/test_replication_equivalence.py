"""replica↔primary equivalence: log-shipping never changes links.

The replication contract extends the incremental engine's: shipping
any delta stream through the primary's JSONL delta log to a replica's
own engine yields links **bit-identical** to the primary — and hence
to one cold run on the final graphs — for every registry matcher
under ``backend="csr"``.  The sweep pins the full registry through a
hand-rolled log (black-box matchers cannot checkpoint, so the replica
attaches to the same base state directly), and hypothesis drives the
*real* pipeline — durable service, fsync'd log, checkpoint bootstrap,
``ReplicaService.follow`` — through randomized G(n, p) streams with
removals, late seeds, and new nodes."""

import asyncio
import json
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings

from repro.core.config import MatcherConfig
from repro.core.matcher import UserMatching
from repro.incremental import IncrementalReconciler
from repro.incremental.delta import delta_to_payload
from repro.registry import get_matcher, matcher_names
from repro.serving import ReconciliationService, ReplicaService

from test_incremental_equivalence import (
    MATCHER_CONFIGS,
    gnp_stream,
    streamed_workload,
)


def write_delta_log(path, deltas):
    """The primary's wire format, one delta event per applied batch."""
    with open(path, "w", encoding="utf-8") as fh:
        for batch, delta in enumerate(deltas, start=1):
            fh.write(
                json.dumps(
                    {
                        "type": "delta",
                        "batch": batch,
                        "ts": 1700000000.0 + batch,
                        "payload": delta_to_payload(delta),
                    }
                )
                + "\n"
            )


def drain_sync(replica, batches):
    """Apply every pending logged batch without an event loop."""
    while replica.step():
        pass
    assert replica.replication_error is None
    assert replica.batches_done == batches
    assert replica.lag_batches == 0


class TestRegistrySweep:
    def test_sweep_covers_the_whole_registry(self):
        assert sorted(MATCHER_CONFIGS) == matcher_names()

    @pytest.mark.parametrize("name", sorted(MATCHER_CONFIGS))
    def test_log_shipping_is_bit_identical(self, name, tmp_path):
        pair, seeds, base1, base2, deltas = streamed_workload(seed=47)
        config = MATCHER_CONFIGS[name]

        def engine():
            return IncrementalReconciler(
                matcher=get_matcher(name, backend="csr", **config)
            )

        primary = engine()
        primary.start(base1.copy(), base2.copy(), seeds)
        for delta in deltas:
            primary.apply(delta)
        log = tmp_path / "primary.jsonl"
        write_delta_log(log, deltas)
        # Black-box matchers cannot checkpoint, so the replica attaches
        # the way a checkpoint would position it: same base state,
        # zero applied batches, tail the whole log.
        follower = engine()
        follower.start(base1.copy(), base2.copy(), seeds)
        replica = ReplicaService(follower, log_path=log)
        drain_sync(replica, batches=len(deltas))
        assert replica.engine.result.links == primary.result.links
        cold = get_matcher(name, backend="csr", **config).run(
            pair.g1, pair.g2, seeds
        )
        assert replica.engine.result.links == cold.links


class TestRandomStreams:
    @given(gnp_stream())
    @settings(max_examples=10, deadline=None)
    def test_real_log_shipping_matches_cold_run(self, wl):
        pair, seeds, base1, base2, start_seeds, deltas = wl
        with tempfile.TemporaryDirectory() as tmp:
            self._roundtrip(Path(tmp), pair, seeds, base1, base2,
                            start_seeds, deltas)

    @staticmethod
    def _roundtrip(tmp_path, pair, seeds, base1, base2, start_seeds,
                   deltas):
        ckpt = tmp_path / "p.npz"
        engine = IncrementalReconciler(
            MatcherConfig(threshold=2, iterations=2)
        )
        engine.start(base1.copy(), base2.copy(), start_seeds)
        service = ReconciliationService(
            engine,
            checkpoint_path=ckpt,
            checkpoint_every=100,
        )

        async def drive():
            await service.start()
            for delta in deltas:
                await service.submit(delta)
            service.abort()  # leave the checkpoint stale: the replica
            # must earn the final state by replaying the log.

        asyncio.run(drive())
        replica = ReplicaService.follow(str(ckpt) + ".jsonl")
        assert replica.batches_done == 0
        drain_sync(replica, batches=service.batches_done)
        assert replica.version == service.version
        assert replica.engine.links == engine.links
        cold = UserMatching(
            MatcherConfig(threshold=2, iterations=2, backend="csr")
        ).run(pair.g1, pair.g2, seeds)
        assert replica.engine.links == cold.links

    @given(gnp_stream())
    @settings(max_examples=6, deadline=None)
    def test_mid_stream_checkpoint_attach_is_bit_identical(self, wl):
        pair, seeds, base1, base2, start_seeds, deltas = wl
        with tempfile.TemporaryDirectory() as tmp:
            self._attach_mid_stream(Path(tmp), pair, seeds, base1,
                                    base2, start_seeds, deltas)

    @staticmethod
    def _attach_mid_stream(tmp_path, pair, seeds, base1, base2,
                           start_seeds, deltas):
        ckpt = tmp_path / "p.npz"
        engine = IncrementalReconciler(MatcherConfig(threshold=2))
        engine.start(base1.copy(), base2.copy(), start_seeds)
        service = ReconciliationService(
            engine, checkpoint_path=ckpt, checkpoint_every=100
        )
        split = max(1, len(deltas) // 2)

        async def drive():
            await service.start()
            for index, delta in enumerate(deltas, start=1):
                await service.submit(delta)
                if index == split:
                    # A checkpoint mid-stream: the replica bootstraps
                    # here and replays only the tail.
                    service.checkpoint_now()
            service.abort()

        asyncio.run(drive())
        replica = ReplicaService.follow(str(ckpt) + ".jsonl")
        assert replica.batches_done == split
        drain_sync(replica, batches=len(deltas))
        cold = UserMatching(
            MatcherConfig(threshold=2, backend="csr")
        ).run(pair.g1, pair.g2, seeds)
        assert replica.engine.links == cold.links
