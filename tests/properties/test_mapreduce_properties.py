"""Property-based tests for the MapReduce engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce.engine import LocalMapReduce, MapReduceJob, sum_combiner

records_strategy = st.lists(
    st.tuples(st.integers(0, 50), st.text("abcde", max_size=6)),
    max_size=60,
)


def char_count_job(with_combiner: bool) -> MapReduceJob:
    def map_fn(_key, text):
        for ch in text:
            yield (ch, 1)

    def reduce_fn(ch, counts):
        yield (ch, sum(counts))

    return MapReduceJob(
        "chars",
        map_fn,
        reduce_fn,
        sum_combiner if with_combiner else None,
    )


class TestEngineProperties:
    @given(records_strategy, st.integers(1, 16))
    @settings(max_examples=50, deadline=None)
    def test_partition_invariance(self, records, partitions):
        """Results never depend on the partition count."""
        baseline = sorted(
            LocalMapReduce(partitions=1).run(
                char_count_job(True), records
            )
        )
        other = sorted(
            LocalMapReduce(partitions=partitions).run(
                char_count_job(True), records
            )
        )
        assert baseline == other

    @given(records_strategy, st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_combiner_invariance(self, records, partitions):
        """The combiner changes shuffle volume, never results."""
        with_comb = sorted(
            LocalMapReduce(partitions=partitions).run(
                char_count_job(True), records
            )
        )
        without = sorted(
            LocalMapReduce(partitions=partitions).run(
                char_count_job(False), records
            )
        )
        assert with_comb == without

    @given(records_strategy)
    @settings(max_examples=50, deadline=None)
    def test_counts_match_direct_computation(self, records):
        from collections import Counter

        expected = Counter()
        for _key, text in records:
            expected.update(text)
        out = dict(LocalMapReduce().run(char_count_job(True), records))
        assert out == dict(expected)
