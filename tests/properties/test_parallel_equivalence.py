"""serial↔parallel equivalence: identical links for every worker count.

``workers`` is a pure execution knob — for any workload, any registered
matcher, and either backend, ``workers=N`` must produce exactly the same
``MatchingResult.links`` as ``workers=1``.  These tests pin that down on
randomized graphs (hypothesis-driven G(n, p) workloads plus seeded
preferential-attachment spot checks) for all seven registry matchers on
both the ``dict`` and ``csr`` backends, plus the edge cases where the
shard planner degenerates: empty buckets (no eligible candidates at a
degree floor), a single link (one shard, idle workers), and no seeds at
all.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import MatcherConfig, TiePolicy
from repro.core.matcher import UserMatching
from repro.generators.erdos_renyi import gnp_graph
from repro.generators.preferential_attachment import (
    preferential_attachment_graph,
)
from repro.graphs.graph import Graph
from repro.registry import get_matcher, matcher_names
from repro.sampling.edge_sampling import independent_copies
from repro.seeds.generators import sample_seeds

#: Registry-name -> extra config used in the all-matchers sweep (chosen
#: so every matcher actually links something at test scale).
MATCHER_CONFIGS: dict[str, dict] = {
    "user-matching": {"threshold": 2, "iterations": 2},
    "mapreduce-user-matching": {"threshold": 2, "iterations": 2},
    "common-neighbors": {},
    "reconciler": {"threshold": 2, "rounds": 2},
    "degree-sequence": {},
    "narayanan-shmatikov": {},
    "structural-features": {},
}

#: Default exercises an uneven split (3 does not divide most rounds);
#: the nightly workflow re-runs the wall at 4 via this env override.
WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "3"))


def workload(n=220, m=4, s=0.6, link_prob=0.1, seed=0):
    g = preferential_attachment_graph(n, m, seed=seed)
    pair = independent_copies(g, s, seed=seed + 1)
    seeds = sample_seeds(pair, link_prob, seed=seed + 2)
    return pair, seeds


@st.composite
def gnp_workload(draw):
    n = draw(st.integers(30, 100))
    p = draw(st.floats(0.03, 0.15))
    s = draw(st.floats(0.4, 0.9))
    link_prob = draw(st.floats(0.05, 0.3))
    seed = draw(st.integers(0, 10_000))
    g = gnp_graph(n, p, seed=seed)
    pair = independent_copies(g, s, seed=seed + 1)
    seeds = sample_seeds(pair, link_prob, seed=seed + 2)
    return pair, seeds


class TestRegistrySweep:
    def test_every_matcher_accepts_workers(self):
        """The config sweep covers the whole registry."""
        assert sorted(MATCHER_CONFIGS) == matcher_names()

    @pytest.mark.parametrize("backend", ["dict", "csr"])
    @pytest.mark.parametrize("name", sorted(MATCHER_CONFIGS))
    def test_links_identical_across_worker_counts(self, name, backend):
        pair, seeds = workload(seed=17)
        config = MATCHER_CONFIGS[name]
        ref = get_matcher(
            name, backend=backend, workers=1, **config
        ).run(pair.g1, pair.g2, seeds)
        par = get_matcher(
            name, backend=backend, workers=WORKERS, **config
        ).run(pair.g1, pair.g2, seeds)
        assert par.links == ref.links
        assert par.seeds == ref.seeds


class TestUserMatchingProperties:
    @given(gnp_workload(), st.integers(1, 4))
    @settings(max_examples=12, deadline=None)
    def test_links_identical_over_thresholds(self, wl, threshold):
        pair, seeds = wl
        ref = UserMatching(
            MatcherConfig(
                threshold=threshold, iterations=2, backend="csr"
            )
        ).run(pair.g1, pair.g2, seeds)
        par = UserMatching(
            MatcherConfig(
                threshold=threshold,
                iterations=2,
                backend="csr",
                workers=WORKERS,
            )
        ).run(pair.g1, pair.g2, seeds)
        assert par.links == ref.links

    @given(gnp_workload())
    @settings(max_examples=8, deadline=None)
    def test_links_identical_lowest_id_and_unbucketed(self, wl):
        pair, seeds = wl
        for kwargs in (
            {"tie_policy": TiePolicy.LOWEST_ID},
            {"use_degree_buckets": False},
            {"min_bucket_exponent": 0, "threshold": 1},
        ):
            ref = UserMatching(
                MatcherConfig(backend="csr", **kwargs)
            ).run(pair.g1, pair.g2, seeds)
            par = UserMatching(
                MatcherConfig(backend="csr", workers=WORKERS, **kwargs)
            ).run(pair.g1, pair.g2, seeds)
            assert par.links == ref.links, kwargs

    @given(gnp_workload())
    @settings(max_examples=8, deadline=None)
    def test_phase_accounting_identical(self, wl):
        """Same per-round candidates/witness counts, not just links."""
        pair, seeds = wl
        ref = UserMatching(
            MatcherConfig(iterations=2, backend="csr")
        ).run(pair.g1, pair.g2, seeds)
        par = UserMatching(
            MatcherConfig(iterations=2, backend="csr", workers=WORKERS)
        ).run(pair.g1, pair.g2, seeds)
        assert len(par.phases) == len(ref.phases)
        for a, b in zip(par.phases, ref.phases):
            assert a == b


class TestShardEdgeCases:
    def test_empty_bucket_rounds(self):
        """A high max_degree forces top buckets with no candidates."""
        pair, seeds = workload(n=80, seed=5)
        base = dict(threshold=2, iterations=1, max_degree=4096, backend="csr")
        ref = UserMatching(MatcherConfig(**base)).run(pair.g1, pair.g2, seeds)
        par = UserMatching(
            MatcherConfig(workers=WORKERS, **base)
        ).run(pair.g1, pair.g2, seeds)
        assert par.links == ref.links

    def test_single_link_single_node_shards(self):
        """One seed -> one shard; the other workers stay idle."""
        g = Graph.from_edges(
            [(0, 1), (0, 2), (0, 3), (1, 2), (2, 3), (3, 4), (1, 4)]
        )
        pair = independent_copies(g, 1.0, seed=0)
        seeds = {0: 0}
        # LOWEST_ID: with a single witness everywhere SKIP would tie
        # every candidate away and nothing could ever link.
        base = dict(
            threshold=1,
            min_bucket_exponent=0,
            backend="csr",
            iterations=2,
            tie_policy=TiePolicy.LOWEST_ID,
        )
        ref = UserMatching(MatcherConfig(**base)).run(pair.g1, pair.g2, seeds)
        par = UserMatching(
            MatcherConfig(workers=WORKERS, **base)
        ).run(pair.g1, pair.g2, seeds)
        assert par.links == ref.links
        assert len(par.links) > 1  # it actually matched something

    def test_no_seeds_at_all(self):
        pair, _ = workload(n=60, seed=9)
        cfg = MatcherConfig(backend="csr", workers=WORKERS)
        result = UserMatching(cfg).run(pair.g1, pair.g2, {})
        assert result.links == {}

    def test_workers_exceed_links(self):
        """More workers than links: planner emits < workers shards."""
        pair, seeds = workload(n=100, seed=3)
        two_seeds = dict(list(seeds.items())[:2])
        base = dict(threshold=2, iterations=2, backend="csr")
        ref = UserMatching(MatcherConfig(**base)).run(
            pair.g1, pair.g2, two_seeds
        )
        par = UserMatching(MatcherConfig(workers=8, **base)).run(
            pair.g1, pair.g2, two_seeds
        )
        assert par.links == ref.links

    def test_isolated_nodes_and_empty_graph_sides(self):
        g1 = Graph.from_edges([(0, 1)], nodes=[0, 1, 2, 3])
        g2 = Graph.from_edges([(0, 1)], nodes=[0, 1, 2, 3])
        cfg = MatcherConfig(
            backend="csr", workers=WORKERS, threshold=1,
            min_bucket_exponent=0,
        )
        result = UserMatching(cfg).run(g1, g2, {0: 0})
        serial = UserMatching(
            MatcherConfig(
                backend="csr", threshold=1, min_bucket_exponent=0
            )
        ).run(g1, g2, {0: 0})
        assert result.links == serial.links


class TestSelectorAndMRSweeps:
    @pytest.mark.parametrize(
        "selector", ["mutual-best", "greedy", "gale-shapley"]
    )
    def test_reconciler_selectors_identical(self, selector):
        pair, seeds = workload(seed=23)
        ref = get_matcher(
            "reconciler", selector=selector, backend="csr", workers=1
        ).run(pair.g1, pair.g2, seeds)
        par = get_matcher(
            "reconciler",
            selector=selector,
            backend="csr",
            workers=WORKERS,
        ).run(pair.g1, pair.g2, seeds)
        assert par.links == ref.links, selector

    @pytest.mark.parametrize("partitions", [1, 4])
    def test_mapreduce_reduce_sharding_identical(self, partitions):
        from repro.mapreduce.engine import LocalMapReduce
        from repro.mapreduce.matcher_mr import MapReduceUserMatching

        pair, seeds = workload(n=120, seed=31)
        cfg = MatcherConfig(threshold=2, iterations=1)
        ref = MapReduceUserMatching(
            cfg, engine=LocalMapReduce(partitions=partitions)
        ).run(pair.g1, pair.g2, seeds)
        par = MapReduceUserMatching(
            cfg,
            engine=LocalMapReduce(
                partitions=partitions, workers=WORKERS
            ),
        ).run(pair.g1, pair.g2, seeds)
        assert par.links == ref.links
