"""Backend link-identity under candidate pruning, across the registry.

Pruning deliberately changes results versus ``candidate_pruning="none"``
— the invariant it must keep instead is that the *backends agree with
each other*: the community assignment is computed once from the union
graph and the initial seeds, so dict, csr and native must land on
exactly the same links under the same pruning mode, for every
registered matcher and for serial and pooled execution alike.
"""

import pytest

from repro.core.config import MatcherConfig
from repro.core.matcher import UserMatching
from repro.generators.preferential_attachment import (
    preferential_attachment_graph,
)
from repro.registry import get_matcher, matcher_names
from repro.sampling.edge_sampling import independent_copies
from repro.seeds.generators import sample_seeds

#: Registry-name -> extra config (mirrors the unpruned backend wall in
#: test_backend_equivalence.py so coverage tracks the registry).
MATCHER_CONFIGS: dict[str, dict] = {
    "user-matching": {"threshold": 2, "iterations": 2},
    "mapreduce-user-matching": {"threshold": 2, "iterations": 2},
    "common-neighbors": {},
    "reconciler": {"threshold": 2, "rounds": 2},
    "degree-sequence": {},
    "narayanan-shmatikov": {},
    "structural-features": {},
}


def workload(n=220, m=4, s=0.6, link_prob=0.1, seed=0):
    g = preferential_attachment_graph(n, m, seed=seed)
    pair = independent_copies(g, s, seed=seed + 1)
    seeds = sample_seeds(pair, link_prob, seed=seed + 2)
    return pair, seeds


class TestPrunedRegistryWall:
    def test_wall_covers_the_whole_registry(self):
        assert sorted(MATCHER_CONFIGS) == matcher_names()

    @pytest.mark.parametrize("workers", [1, 3])
    @pytest.mark.parametrize("name", sorted(MATCHER_CONFIGS))
    def test_backends_link_identical_under_pruning(self, name, workers):
        pair, seeds = workload()
        config = MATCHER_CONFIGS[name]
        results = {
            backend: get_matcher(
                name,
                backend=backend,
                workers=workers,
                candidate_pruning="community",
                **config,
            ).run(pair.g1, pair.g2, seeds)
            for backend in ("dict", "csr", "native")
        }
        assert results["csr"].links == results["dict"].links, name
        assert results["native"].links == results["dict"].links, name
        assert results["csr"].seeds == results["dict"].seeds


class TestPruningSemantics:
    @pytest.mark.parametrize("frontier", [0, 1, 2])
    def test_frontier_monotone_in_candidates(self, frontier):
        """A wider ring can only re-admit pairs, never drop them."""
        pair, seeds = workload(seed=40)
        def candidates(**overrides):
            result = UserMatching(
                MatcherConfig(
                    threshold=2,
                    iterations=1,
                    backend="csr",
                    **overrides,
                )
            ).run(pair.g1, pair.g2, seeds)
            return sum(p.candidates for p in result.phases)

        pruned = candidates(
            candidate_pruning="community", pruning_frontier=frontier
        )
        assert pruned <= candidates()
        if frontier > 0:
            narrower = candidates(
                candidate_pruning="community",
                pruning_frontier=frontier - 1,
            )
            assert narrower <= pruned

    def test_pruned_links_subset_semantics_documented(self):
        """Pruning may change results; what it must never do is link a
        pair it was asked to exclude while both endpoints are assigned
        to disallowed communities."""
        from repro.graphs.communities import assignment_for
        from repro.graphs.pair_index import GraphPairIndex

        pair, seeds = workload(seed=77)
        result = UserMatching(
            MatcherConfig(
                threshold=2,
                iterations=2,
                backend="csr",
                candidate_pruning="community",
            )
        ).run(pair.g1, pair.g2, seeds)
        index = GraphPairIndex(pair.g1, pair.g2)
        assignment = assignment_for(
            pair.g1, pair.g2, seeds, index=index
        )
        cmap1, cmap2 = assignment.community_maps(index)
        for v1, v2 in result.links.items():
            if v1 in seeds:
                continue  # seeds are given, not generated
            assert assignment.allowed_communities(
                cmap1[v1], cmap2[v2]
            ), (v1, v2)
