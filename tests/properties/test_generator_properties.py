"""Property-based tests for generator invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators.erdos_renyi import gnm_graph, gnp_graph
from repro.generators.preferential_attachment import (
    preferential_attachment_graph,
)
from repro.generators.rmat import rmat_graph


class TestGeneratorProperties:
    @given(
        st.integers(1, 150),
        st.floats(0.0, 0.3),
        st.integers(0, 9999),
    )
    @settings(max_examples=50, deadline=None)
    def test_gnp_simple_graph(self, n, p, seed):
        g = gnp_graph(n, p, seed=seed)
        assert g.num_nodes == n
        for u, v in g.edges():
            assert u != v
            assert 0 <= u < n and 0 <= v < n

    @given(st.integers(2, 60), st.integers(0, 9999))
    @settings(max_examples=50, deadline=None)
    def test_gnm_exact(self, n, seed):
        max_m = n * (n - 1) // 2
        m = min(max_m, 3 * n)
        g = gnm_graph(n, m, seed=seed)
        assert g.num_edges == m

    @given(
        st.integers(2, 120),
        st.integers(1, 6),
        st.integers(0, 9999),
    )
    @settings(max_examples=50, deadline=None)
    def test_pa_bounds(self, n, m, seed):
        g = preferential_attachment_graph(n, m, seed=seed)
        assert g.num_nodes == n
        assert g.num_edges <= n * m
        for u, v in g.edges():
            assert u != v

    @given(st.integers(2, 10), st.integers(0, 400), st.integers(0, 9999))
    @settings(max_examples=40, deadline=None)
    def test_rmat_address_space(self, scale, edges, seed):
        g = rmat_graph(scale, edges, seed=seed)
        limit = 1 << scale
        for node in g.nodes():
            assert 0 <= node < limit
        assert g.num_edges <= edges

    @given(st.integers(1, 100), st.floats(0.0, 1.0), st.integers(0, 999))
    @settings(max_examples=40, deadline=None)
    def test_gnp_seed_determinism(self, n, p, seed):
        assert gnp_graph(n, p, seed=seed) == gnp_graph(n, p, seed=seed)
