"""Property-based tests for k-core, links I/O and diagnostics invariants."""

import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.links_io import read_links, write_links
from repro.graphs.graph import Graph
from repro.graphs.kcore import core_numbers, k_core

edge_lists = st.lists(
    st.tuples(st.integers(0, 25), st.integers(0, 25)).filter(
        lambda e: e[0] != e[1]
    ),
    max_size=80,
)


class TestKCoreProperties:
    @given(edge_lists)
    @settings(max_examples=60, deadline=None)
    def test_core_number_at_most_degree(self, edges):
        g = Graph.from_edges(edges)
        cores = core_numbers(g)
        for node, core in cores.items():
            assert 0 <= core <= g.degree(node)

    @given(edge_lists, st.integers(1, 5))
    @settings(max_examples=60, deadline=None)
    def test_k_core_min_degree(self, edges, k):
        g = Graph.from_edges(edges)
        sub = k_core(g, k)
        for node in sub.nodes():
            assert sub.degree(node) >= k

    @given(edge_lists)
    @settings(max_examples=40, deadline=None)
    def test_cores_nested(self, edges):
        g = Graph.from_edges(edges)
        two = set(k_core(g, 2).nodes())
        three = set(k_core(g, 3).nodes())
        assert three <= two


class TestLinksIoProperties:
    @given(
        st.dictionaries(
            st.integers(0, 10_000),
            st.integers(0, 10_000),
            max_size=50,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_int_round_trip(self, links):
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "links.tsv"
            write_links(links, path)
            assert read_links(path) == links

    @given(
        st.dictionaries(
            st.text(
                alphabet="abcdefgh:_-", min_size=1, max_size=10
            ).filter(lambda s: not s.isdigit()),
            st.text(
                alphabet="ijklmnop:_-", min_size=1, max_size=10
            ).filter(lambda s: not s.isdigit()),
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_string_round_trip(self, links):
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "links.tsv"
            write_links(links, path)
            assert read_links(path) == links
