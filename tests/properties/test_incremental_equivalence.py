"""incremental↔cold equivalence: streaming deltas never changes links.

The incremental engine's contract: replaying any edge stream as ``k``
deltas through :class:`~repro.incremental.engine.IncrementalReconciler`
yields links **bit-identical** to one cold run on the final graphs —
for every registry matcher, on both backends, at any worker count.  The
warm engine earns this with exact score-table corrections; black-box
matchers earn it by cold replay; either way the seam must never leak.

The sweep below pins the full matrix (7 matchers × {dict, csr} ×
workers {1, N}) on a seeded PA workload, and hypothesis drives the warm
engine through randomized G(n, p) streams — including removals, late
seed confirmations, and brand-new nodes — under every matcher config
knob that changes the schedule.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import MatcherConfig, TiePolicy
from repro.core.matcher import UserMatching
from repro.generators.erdos_renyi import gnp_graph
from repro.generators.preferential_attachment import (
    preferential_attachment_graph,
)
from repro.incremental import (
    GraphDelta,
    IncrementalReconciler,
    split_edge_stream,
)
from repro.registry import get_matcher, matcher_names
from repro.sampling.edge_sampling import independent_copies
from repro.seeds.generators import sample_seeds

#: Registry-name -> extra config used in the all-matchers sweep (same
#: recipe as the parallel/blocked equivalence walls).
MATCHER_CONFIGS: dict[str, dict] = {
    "user-matching": {"threshold": 2, "iterations": 2},
    "mapreduce-user-matching": {"threshold": 2, "iterations": 2},
    "common-neighbors": {},
    "reconciler": {"threshold": 2, "rounds": 2},
    "degree-sequence": {},
    "narayanan-shmatikov": {},
    "structural-features": {},
}

WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "3"))


def streamed_workload(n=200, m=4, s=0.6, link_prob=0.12, seed=0,
                      hold_fraction=0.25, num_deltas=3):
    """Base pair + seeds + deltas whose replay restores the full pair."""
    g = preferential_attachment_graph(n, m, seed=seed)
    pair = independent_copies(g, s, seed=seed + 1)
    seeds = sample_seeds(pair, link_prob, seed=seed + 2)
    import random

    rng = random.Random(seed + 3)
    edges1 = sorted(pair.g1.edges())
    edges2 = sorted(pair.g2.edges())
    rng.shuffle(edges1)
    rng.shuffle(edges2)
    k1 = int(len(edges1) * hold_fraction)
    k2 = int(len(edges2) * hold_fraction)
    stream1, stream2 = edges1[:k1], edges2[:k2]
    base1, base2 = pair.g1.copy(), pair.g2.copy()
    for u, v in stream1:
        base1.remove_edge(u, v)
    for u, v in stream2:
        base2.remove_edge(u, v)
    deltas = split_edge_stream(stream1, stream2, num_deltas)
    return pair, seeds, base1, base2, deltas


class TestRegistrySweep:
    def test_sweep_covers_the_whole_registry(self):
        assert sorted(MATCHER_CONFIGS) == matcher_names()

    @pytest.mark.parametrize("workers", [1, WORKERS])
    @pytest.mark.parametrize("backend", ["dict", "csr"])
    @pytest.mark.parametrize("name", sorted(MATCHER_CONFIGS))
    def test_stream_replay_matches_cold_run(self, name, backend, workers):
        pair, seeds, base1, base2, deltas = streamed_workload(seed=41)
        config = MATCHER_CONFIGS[name]
        matcher = get_matcher(name, backend=backend, workers=workers, **config)
        engine = IncrementalReconciler(matcher=matcher)
        engine.start(base1, base2, seeds)
        for delta in deltas:
            engine.apply(delta)
        cold = get_matcher(
            name, backend=backend, workers=workers, **config
        ).run(pair.g1, pair.g2, seeds)
        assert engine.result.links == cold.links


@st.composite
def gnp_stream(draw):
    n = draw(st.integers(30, 90))
    p = draw(st.floats(0.04, 0.15))
    s = draw(st.floats(0.4, 0.9))
    link_prob = draw(st.floats(0.05, 0.3))
    seed = draw(st.integers(0, 10_000))
    num_deltas = draw(st.integers(1, 4))
    g = gnp_graph(n, p, seed=seed)
    pair = independent_copies(g, s, seed=seed + 1)
    seeds = sample_seeds(pair, link_prob, seed=seed + 2)
    import random

    rng = random.Random(seed + 3)
    edges1 = sorted(pair.g1.edges())
    edges2 = sorted(pair.g2.edges())
    rng.shuffle(edges1)
    rng.shuffle(edges2)
    k1, k2 = len(edges1) // 3, len(edges2) // 3
    stream1, stream2 = edges1[:k1], edges2[:k2]
    base1, base2 = pair.g1.copy(), pair.g2.copy()
    for u, v in stream1:
        base1.remove_edge(u, v)
    for u, v in stream2:
        base2.remove_edge(u, v)
    # Hold back some seeds to confirm mid-stream.
    seed_items = sorted(seeds.items(), key=repr)
    rng.shuffle(seed_items)
    half = max(1, len(seed_items) // 2) if seed_items else 0
    start_seeds = dict(seed_items[:half])
    late_seeds = dict(seed_items[half:])
    deltas = split_edge_stream(
        stream1, stream2, num_deltas, added_seeds=late_seeds
    )
    return pair, seeds, base1, base2, start_seeds, deltas


class TestWarmEngineProperties:
    @given(gnp_stream())
    @settings(max_examples=15, deadline=None)
    def test_random_streams_bit_identical(self, wl):
        pair, seeds, base1, base2, start_seeds, deltas = wl
        cfg = MatcherConfig(threshold=2, iterations=2)
        engine = IncrementalReconciler(cfg)
        engine.start(base1, base2, start_seeds)
        for delta in deltas:
            engine.apply(delta)
        cold = UserMatching(
            MatcherConfig(threshold=2, iterations=2, backend="csr")
        ).run(pair.g1, pair.g2, seeds)
        assert engine.result.links == cold.links
        assert engine.result.phases == cold.phases

    @given(gnp_stream())
    @settings(max_examples=8, deadline=None)
    def test_config_knobs_stay_identical(self, wl):
        pair, seeds, base1, base2, start_seeds, deltas = wl
        for kwargs in (
            {"tie_policy": TiePolicy.LOWEST_ID},
            {"use_degree_buckets": False},
            {"threshold": 1, "min_bucket_exponent": 0},
            {"threshold": 3, "memory_budget_mb": 1},
        ):
            engine = IncrementalReconciler(MatcherConfig(**kwargs))
            engine.start(base1.copy(), base2.copy(), start_seeds)
            for delta in deltas:
                engine.apply(delta)
            cold = UserMatching(
                MatcherConfig(backend="csr", **kwargs)
            ).run(pair.g1, pair.g2, seeds)
            assert engine.result.links == cold.links, kwargs

    @given(gnp_stream(), st.integers(0, 100))
    @settings(max_examples=8, deadline=None)
    def test_removals_and_new_nodes(self, wl, salt):
        import random

        pair, seeds, base1, base2, start_seeds, deltas = wl
        cfg = MatcherConfig(threshold=2)
        engine = IncrementalReconciler(cfg)
        engine.start(base1, base2, start_seeds)
        for delta in deltas:
            engine.apply(delta)
        # One more delta: removals plus brand-new nodes on both sides.
        rng = random.Random(salt)
        present = sorted(engine.g1.edges())
        rng.shuffle(present)
        anchor1 = next(iter(engine.g1.nodes()))
        anchor2 = next(iter(engine.g2.nodes()))
        engine.apply(
            GraphDelta.build(
                removed_edges1=present[: min(4, len(present))],
                added_edges1=[("fresh-a", anchor1)],
                added_edges2=[("fresh-a", anchor2), ("fresh-b", anchor2)],
            )
        )
        cold = UserMatching(MatcherConfig(threshold=2, backend="csr")).run(
            engine.g1, engine.g2, engine.seeds
        )
        assert engine.result.links == cold.links

    def test_forced_compaction_every_delta(self):
        pair, seeds, base1, base2, deltas = streamed_workload(
            seed=43, num_deltas=4
        )
        engine = IncrementalReconciler(MatcherConfig(threshold=2))
        engine.start(base1, base2, seeds)
        engine.index._compact_min = 1
        engine.index._compact_ratio = 0.0
        for delta in deltas:
            engine.apply(delta)
        cold = UserMatching(
            MatcherConfig(threshold=2, backend="csr")
        ).run(pair.g1, pair.g2, seeds)
        assert engine.result.links == cold.links
