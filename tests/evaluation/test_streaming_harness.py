"""``run_trial(deltas=...)``: the harness's streaming column."""

import pytest

from repro.core.config import MatcherConfig
from repro.core.matcher import UserMatching
from repro.evaluation.harness import run_trial
from repro.generators.erdos_renyi import gnp_graph
from repro.incremental import split_edge_stream
from repro.sampling.edge_sampling import independent_copies
from repro.seeds.generators import sample_seeds


@pytest.fixture()
def streamed():
    g = gnp_graph(70, 0.1, seed=21)
    pair = independent_copies(g, 0.7, seed=22)
    seeds = sample_seeds(pair, 0.2, seed=23)
    edges1 = sorted(pair.g1.edges())[:12]
    edges2 = sorted(pair.g2.edges())[:12]
    base1, base2 = pair.g1.copy(), pair.g2.copy()
    for u, v in edges1:
        base1.remove_edge(u, v)
    for u, v in edges2:
        base2.remove_edge(u, v)
    from repro.sampling.pair import GraphPair

    base_pair = GraphPair(base1, base2, dict(pair.identity))
    deltas = split_edge_stream(edges1, edges2, 3)
    return pair, base_pair, seeds, deltas


class TestStreamingTrial:
    def test_links_match_cold_run_on_final_state(self, streamed):
        pair, base_pair, seeds, deltas = streamed
        trial = run_trial(
            base_pair,
            seeds,
            config=MatcherConfig(threshold=2),
            deltas=deltas,
        )
        cold = UserMatching(
            MatcherConfig(threshold=2, backend="csr")
        ).run(pair.g1, pair.g2, seeds)
        assert trial.result.links == cold.links

    def test_streaming_columns_in_row(self, streamed):
        _pair, base_pair, seeds, deltas = streamed
        trial = run_trial(
            base_pair,
            seeds,
            config=MatcherConfig(threshold=2),
            deltas=deltas,
        )
        assert trial.delta_outcomes is not None
        assert len(trial.delta_outcomes) == 3
        row = trial.row()
        assert row["deltas"] == 3
        assert row["delta_total_s"] >= row["delta_mean_s"] >= 0
        assert "dirty_links" in row
        assert row["elapsed_s"] > 0  # the cold-start comparator

    def test_caller_graphs_never_mutated(self, streamed):
        _pair, base_pair, seeds, deltas = streamed
        edges_before = base_pair.g1.num_edges
        run_trial(
            base_pair,
            seeds,
            config=MatcherConfig(threshold=2),
            deltas=deltas,
        )
        assert base_pair.g1.num_edges == edges_before

    def test_named_matcher_streams_via_fallback(self, streamed):
        pair, base_pair, seeds, deltas = streamed
        trial = run_trial(
            base_pair,
            seeds,
            matcher="common-neighbors",
            deltas=deltas,
        )
        assert trial.delta_outcomes[0].mode == "cold"
        from repro.registry import get_matcher

        cold = get_matcher("common-neighbors").run(pair.g1, pair.g2, seeds)
        assert trial.result.links == cold.links
        assert "dirty_links" not in trial.row()

    def test_plain_trial_has_no_streaming_columns(self, streamed):
        _pair, base_pair, seeds, _deltas = streamed
        trial = run_trial(base_pair, seeds, config=MatcherConfig(threshold=2))
        assert trial.delta_outcomes is None
        assert "deltas" not in trial.row()

    def test_track_memory_composes(self, streamed):
        _pair, base_pair, seeds, deltas = streamed
        trial = run_trial(
            base_pair,
            seeds,
            config=MatcherConfig(threshold=2),
            deltas=deltas,
            track_memory=True,
        )
        assert trial.peak_mb is not None and trial.peak_mb > 0
