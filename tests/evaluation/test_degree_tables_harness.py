"""Unit tests for degree-stratified evaluation, tables and the harness."""

import pytest

from repro.core.config import MatcherConfig
from repro.core.result import MatchingResult
from repro.evaluation.degree_stratified import (
    DegreeBucketStats,
    degree_stratified_report,
)
from repro.evaluation.harness import run_trial
from repro.evaluation.tables import format_report_rows, format_table
from repro.graphs.graph import Graph
from repro.sampling.pair import GraphPair


class TestDegreeStratified:
    @pytest.fixture
    def pair(self):
        # node 0: degree 3 hub; nodes 1-3: degree >= 1
        g1 = Graph.from_edges([(0, 1), (0, 2), (0, 3)])
        g2 = Graph.from_edges([(0, 1), (0, 2), (0, 3)])
        return GraphPair(g1=g1, g2=g2, identity={i: i for i in range(4)})

    def test_bucket_assignment(self, pair):
        result = MatchingResult(links={0: 0, 1: 1, 2: 3}, seeds={}, phases=[])
        buckets = degree_stratified_report(result, pair, bucket_edges=(1, 2))
        low, high = buckets
        assert low.lo == 1 and low.hi == 2
        assert high.lo == 2 and high.hi is None
        assert low.identifiable == 3  # nodes 1,2,3 (degree 1)
        assert high.identifiable == 1  # hub
        assert low.matched_good == 1  # node 1
        assert low.matched_bad == 1  # node 2 -> 3
        assert high.matched_good == 1

    def test_recall_precision_per_bucket(self, pair):
        result = MatchingResult(links={1: 1}, seeds={}, phases=[])
        buckets = degree_stratified_report(result, pair, bucket_edges=(1, 2))
        assert buckets[0].recall == pytest.approx(1 / 3)
        assert buckets[0].precision == 1.0
        assert buckets[1].recall == 0.0
        assert buckets[1].precision == 1.0  # vacuous

    def test_labels(self):
        b = DegreeBucketStats(
            lo=5, hi=8, identifiable=0, matched_good=0, matched_bad=0
        )
        assert b.label == "5-7"
        top = DegreeBucketStats(
            lo=89, hi=None, identifiable=0, matched_good=0, matched_bad=0
        )
        assert top.label == "89+"
        single = DegreeBucketStats(
            lo=2, hi=3, identifiable=0, matched_good=0, matched_bad=0
        )
        assert single.label == "2"

    def test_empty_edges_raises(self, pair):
        result = MatchingResult(links={}, seeds={}, phases=[])
        with pytest.raises(ValueError):
            degree_stratified_report(result, pair, bucket_edges=())

    def test_recall_rises_with_degree_on_real_workload(
        self, pa_pair, pa_seeds
    ):
        from repro.core.matcher import UserMatching

        result = UserMatching(
            MatcherConfig(threshold=2, iterations=2)
        ).run(pa_pair.g1, pa_pair.g2, pa_seeds)
        buckets = degree_stratified_report(result, pa_pair)
        populated = [b for b in buckets if b.identifiable >= 10]
        assert populated[-1].recall >= populated[0].recall


class TestTables:
    def test_format_basic(self):
        text = format_table(["a", "b"], [[1, 2], [30, 4.5678]])
        lines = text.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert "4.568" in text  # 4 significant digits

    def test_title(self):
        text = format_table(["x"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_format_report_rows(self):
        rows = [{"x": 1, "y": 2}, {"x": 3, "y": 4}]
        text = format_report_rows(rows)
        assert "x" in text and "3" in text

    def test_format_report_rows_empty(self):
        assert format_report_rows([], title="t") == "t"


class TestHarness:
    def test_run_trial(self, pa_pair, pa_seeds):
        trial = run_trial(
            pa_pair,
            pa_seeds,
            config=MatcherConfig(threshold=2, iterations=1),
            params={"exp": "unit"},
        )
        assert trial.elapsed > 0
        assert trial.report.good > 0
        row = trial.row()
        assert row["exp"] == "unit"
        assert "precision" in row
        assert "elapsed_s" in row

    def test_run_trial_with_custom_matcher(self, pa_pair, pa_seeds):
        from repro.baselines.degree_matcher import DegreeSequenceMatcher

        trial = run_trial(pa_pair, pa_seeds, matcher=DegreeSequenceMatcher())
        assert trial.report.good >= 0
