"""Unit tests for ASCII chart rendering."""

import pytest

from repro.evaluation.charts import horizontal_bar_chart, series_chart


class TestHorizontalBarChart:
    def test_basic_render(self):
        text = horizontal_bar_chart(["a", "bb"], [1.0, 0.5], width=10)
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith(" a |")
        assert "1.000" in lines[0]

    def test_full_bar_at_max(self):
        text = horizontal_bar_chart(["x"], [2.0], width=8)
        assert "████████" in text

    def test_zero_values(self):
        text = horizontal_bar_chart(["x"], [0.0], width=8)
        assert "█" not in text

    def test_title(self):
        text = horizontal_bar_chart(["x"], [1.0], title="T")
        assert text.splitlines()[0] == "T"

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            horizontal_bar_chart(["a"], [1.0, 2.0])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            horizontal_bar_chart(["a"], [-1.0])

    def test_empty(self):
        assert "(no data)" in horizontal_bar_chart([], [])

    def test_custom_max_scales_down(self):
        half = horizontal_bar_chart(["x"], [1.0], width=10, max_value=2.0)
        bar = half.split("|")[1]
        assert bar.count("█") == 5


class TestSeriesChart:
    def test_grouped_series(self):
        rows = [
            {"seed_prob": 0.01, "threshold": 1, "recall": 0.5},
            {"seed_prob": 0.05, "threshold": 1, "recall": 0.9},
            {"seed_prob": 0.01, "threshold": 2, "recall": 0.4},
        ]
        text = series_chart(rows, "seed_prob", "recall", group_key="threshold")
        assert "threshold = 1" in text
        assert "threshold = 2" in text
        assert "0.900" in text

    def test_ungrouped(self):
        rows = [{"x": "a", "y": 1.0}, {"x": "b", "y": 2.0}]
        text = series_chart(rows, "x", "y", title="chart")
        assert text.splitlines()[0] == "chart"

    def test_fig2_rows_render(self):
        from repro.experiments import fig2_pa

        result = fig2_pa.run(
            n=600, m=8, seed_probs=(0.1,), thresholds=(2,), seed=1
        )
        text = series_chart(
            result.rows, "seed_prob", "recall", group_key="threshold"
        )
        assert "|" in text
