"""Unit tests for matching-quality metrics."""

import pytest

from repro.core.result import MatchingResult
from repro.errors import EvaluationError
from repro.evaluation.metrics import MatchingReport, evaluate
from repro.graphs.graph import Graph
from repro.sampling.pair import GraphPair


@pytest.fixture
def simple_pair():
    g1 = Graph.from_edges([(0, 1), (1, 2), (2, 3)])
    g2 = Graph.from_edges([("a", "b"), ("b", "c"), ("c", "d")])
    identity = {0: "a", 1: "b", 2: "c", 3: "d"}
    return GraphPair(g1=g1, g2=g2, identity=identity)


def result_with(links, seeds):
    return MatchingResult(links=links, seeds=seeds, phases=[])


class TestEvaluate:
    def test_all_correct(self, simple_pair):
        result = result_with({0: "a", 1: "b", 2: "c"}, seeds={0: "a"})
        report = evaluate(result, simple_pair)
        assert report.good == 3
        assert report.bad == 0
        assert report.new_good == 2
        assert report.precision == 1.0

    def test_wrong_link_counted_bad(self, simple_pair):
        result = result_with({0: "a", 1: "c"}, seeds={})
        report = evaluate(result, simple_pair)
        assert report.good == 1
        assert report.bad == 1
        assert report.new_bad == 1

    def test_link_with_no_truth_is_bad(self, simple_pair):
        g1 = simple_pair.g1.copy()
        g1.add_node("ghost")
        pair = GraphPair(
            g1=g1, g2=simple_pair.g2, identity=simple_pair.identity
        )
        result = result_with({"ghost": "d"}, seeds={})
        report = evaluate(result, pair)
        assert report.bad == 1

    def test_seed_errors_counted_in_totals_not_new(self, simple_pair):
        result = result_with({0: "b"}, seeds={0: "b"})
        report = evaluate(result, simple_pair)
        assert report.bad == 1
        assert report.new_bad == 0

    def test_identifiable_counts_degree_one_plus(self, simple_pair):
        report = evaluate(result_with({}, {}), simple_pair)
        assert report.identifiable == 4

    def test_empty_identity_raises(self):
        pair_graphs = Graph.from_edges([(0, 1)])
        pair = GraphPair(g1=pair_graphs, g2=pair_graphs.copy(), identity={})
        with pytest.raises(EvaluationError):
            evaluate(result_with({}, {}), pair)


class TestReportProperties:
    def test_rates(self):
        report = MatchingReport(
            good=90,
            bad=10,
            new_good=45,
            new_bad=5,
            num_seeds=50,
            identifiable=200,
        )
        assert report.precision == pytest.approx(0.9)
        assert report.error_rate == pytest.approx(0.1)
        assert report.new_precision == pytest.approx(0.9)
        assert report.new_error_rate == pytest.approx(0.1)
        assert report.recall == pytest.approx(0.45)
        assert report.new_recall == pytest.approx(45 / 150)

    def test_no_links_perfect_precision(self):
        report = MatchingReport(
            good=0,
            bad=0,
            new_good=0,
            new_bad=0,
            num_seeds=0,
            identifiable=10,
        )
        assert report.precision == 1.0
        assert report.recall == 0.0

    def test_zero_identifiable(self):
        report = MatchingReport(
            good=0,
            bad=0,
            new_good=0,
            new_bad=0,
            num_seeds=0,
            identifiable=0,
        )
        assert report.recall == 0.0
        assert report.new_recall == 0.0

    def test_as_dict_round_trip(self):
        report = MatchingReport(
            good=1,
            bad=2,
            new_good=3,
            new_bad=4,
            num_seeds=5,
            identifiable=6,
        )
        d = report.as_dict()
        assert d["good"] == 1
        assert d["identifiable"] == 6
        assert "precision" in d
