"""Backend plumbing through the trial harness and compare_matchers."""

import pytest

from repro.core.config import MatcherConfig
from repro.core.matcher import UserMatching
from repro.core.reconciler import Reconciler
from repro.errors import MatcherConfigError
from repro.evaluation.harness import compare_matchers, run_trial


class TestReconcilerCustomStages:
    def test_custom_selector_gets_dict_scores_on_csr(self, pa_pair, pa_seeds):
        """A custom selector sees the documented dict table shape."""

        from repro.core.policy import select_mutual_best

        seen_types = []

        def my_selector(scores, threshold, tie_policy=None):
            seen_types.append(type(scores))
            assert isinstance(scores, dict)
            return select_mutual_best(scores, threshold)

        ref = Reconciler(
            threshold=2, rounds=2, selector=my_selector
        ).run(pa_pair.g1, pa_pair.g2, pa_seeds)
        csr = Reconciler(
            threshold=2, rounds=2, selector=my_selector, backend="csr"
        ).run(pa_pair.g1, pa_pair.g2, pa_seeds)
        assert csr.links == ref.links
        assert all(t is dict for t in seen_types)

    def test_seed_strategy_with_missing_right_endpoint(
        self, pa_pair, pa_seeds
    ):
        """The csr scorer tolerates links pointing outside g2."""

        def loose_seeds(g1, g2, seeds):
            out = dict(seeds)
            out[next(iter(g1.nodes()))] = "not-in-g2"
            return out

        results = {}
        for backend in ("dict", "csr"):
            results[backend] = Reconciler(
                threshold=2,
                rounds=2,
                seed_strategy=loose_seeds,
                backend=backend,
            ).run(pa_pair.g1, pa_pair.g2, pa_seeds)
        assert results["csr"].links == results["dict"].links


class TestRunTrialBackend:
    def test_backend_applied_to_default_matcher(self, pa_pair, pa_seeds):
        ref = run_trial(pa_pair, pa_seeds)
        csr = run_trial(pa_pair, pa_seeds, backend="csr")
        assert csr.result.links == ref.result.links

    def test_backend_overrides_config(self, pa_pair, pa_seeds):
        config = MatcherConfig(threshold=3, iterations=2)
        ref = run_trial(pa_pair, pa_seeds, config=config)
        csr = run_trial(pa_pair, pa_seeds, config=config, backend="csr")
        assert csr.result.links == ref.result.links

    def test_backend_forwarded_to_named_matcher(self, pa_pair, pa_seeds):
        ref = run_trial(pa_pair, pa_seeds, matcher="common-neighbors")
        csr = run_trial(
            pa_pair, pa_seeds, matcher="common-neighbors", backend="csr"
        )
        assert csr.result.links == ref.result.links

    def test_invalid_backend_rejected(self, pa_pair, pa_seeds):
        with pytest.raises(MatcherConfigError):
            run_trial(pa_pair, pa_seeds, backend="gpu")

    def test_backend_with_instance_rejected(self, pa_pair, pa_seeds):
        matcher = UserMatching(MatcherConfig())
        with pytest.raises(MatcherConfigError):
            run_trial(pa_pair, pa_seeds, matcher=matcher, backend="csr")


class TestCompareMatchersBackend:
    def test_backend_column_recorded(self, pa_pair, pa_seeds):
        trials = compare_matchers(
            pa_pair,
            pa_seeds,
            ["user-matching", "degree-sequence"],
            backend="csr",
        )
        for trial in trials:
            assert trial.params["backend"] == "csr"
            assert "backend" in trial.row()

    def test_no_backend_column_by_default(self, pa_pair, pa_seeds):
        trials = compare_matchers(pa_pair, pa_seeds, ["degree-sequence"])
        assert "backend" not in trials[0].params

    def test_instances_not_stamped_with_backend(self, pa_pair, pa_seeds):
        """A pre-built instance keeps its own backend and gets no column."""
        instance = UserMatching(MatcherConfig())
        trials = compare_matchers(
            pa_pair,
            pa_seeds,
            [instance, "user-matching"],
            backend="csr",
        )
        assert "backend" not in trials[0].params
        assert trials[1].params["backend"] == "csr"
        assert trials[0].result.links == trials[1].result.links

    def test_backends_agree_across_registry_names(self, pa_pair, pa_seeds):
        names = ["user-matching", "common-neighbors", "degree-sequence"]
        ref = compare_matchers(pa_pair, pa_seeds, names, backend="dict")
        csr = compare_matchers(pa_pair, pa_seeds, names, backend="csr")
        for a, b in zip(ref, csr):
            assert a.result.links == b.result.links
            assert a.params["matcher"] == b.params["matcher"]
