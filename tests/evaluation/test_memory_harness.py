"""Harness memory accounting: the shared ``peak_mb`` schema.

The harness, the bench JSONs, and the CI regression gate all report
peak memory under the same ``peak_mb`` (MiB) key; these tests pin the
harness side — tracking off by default (tracing costs wall-clock),
opt-in per trial, budget knob threaded like backend/workers.
"""

import numpy as np
import pytest

from repro.core.config import MatcherConfig
from repro.errors import MatcherConfigError
from repro.core.matcher import UserMatching
from repro.evaluation.harness import compare_matchers, run_trial
from repro.generators.preferential_attachment import (
    preferential_attachment_graph,
)
from repro.sampling.edge_sampling import independent_copies
from repro.seeds.generators import sample_seeds
from repro.utils.memory import MemoryTracker, peak_rss_mb


@pytest.fixture(scope="module")
def workload():
    g = preferential_attachment_graph(150, 4, seed=0)
    pair = independent_copies(g, 0.6, seed=1)
    seeds = sample_seeds(pair, 0.1, seed=2)
    return pair, seeds


class TestMemoryTracker:
    def test_measures_allocation_peak(self):
        with MemoryTracker() as tracker:
            buf = np.ones(2 * 1024 * 1024, dtype=np.uint8)  # 2 MiB
            del buf
        assert tracker.peak_mb >= 2.0

    def test_nested_trackers_compose(self):
        with MemoryTracker() as outer:
            with MemoryTracker() as inner:
                buf = np.ones(1024 * 1024, dtype=np.uint8)
                del buf
        assert inner.peak_mb >= 1.0
        assert outer.peak_mb >= 1.0
        # Tracing was fully torn down by the outermost tracker.
        import tracemalloc

        assert not tracemalloc.is_tracing()

    def test_peak_rss_is_positive_on_posix(self):
        rss = peak_rss_mb()
        assert rss is None or rss > 0


class TestRunTrialMemory:
    def test_untracked_by_default(self, workload):
        pair, seeds = workload
        trial = run_trial(pair, seeds)
        assert trial.peak_mb is None
        assert "peak_mb" not in trial.row()

    def test_tracked_adds_peak_mb_column(self, workload):
        pair, seeds = workload
        trial = run_trial(pair, seeds, track_memory=True)
        assert trial.peak_mb is not None
        assert trial.peak_mb >= 0
        assert trial.row()["peak_mb"] == round(trial.peak_mb, 2)

    def test_budget_knob_threaded_to_default_matcher(self, workload):
        pair, seeds = workload
        ref = run_trial(pair, seeds, backend="csr")
        budgeted = run_trial(pair, seeds, backend="csr", memory_budget_mb=64)
        assert budgeted.result.links == ref.result.links

    def test_budget_knob_threaded_to_named_matcher(self, workload):
        pair, seeds = workload
        ref = run_trial(pair, seeds, matcher="common-neighbors")
        budgeted = run_trial(
            pair,
            seeds,
            matcher="common-neighbors",
            backend="csr",
            memory_budget_mb=64,
        )
        assert budgeted.result.links == ref.result.links

    def test_budget_rejected_for_instances(self, workload):
        pair, seeds = workload
        matcher = UserMatching(MatcherConfig())
        with pytest.raises(MatcherConfigError):
            run_trial(pair, seeds, matcher=matcher, memory_budget_mb=64)

    def test_invalid_budget_rejected(self, workload):
        pair, seeds = workload
        with pytest.raises(MatcherConfigError):
            run_trial(pair, seeds, memory_budget_mb=0)


class TestCompareMatchersMemory:
    def test_budget_and_peak_columns(self, workload):
        pair, seeds = workload
        trials = compare_matchers(
            pair,
            seeds,
            ["user-matching", "common-neighbors"],
            backend="csr",
            memory_budget_mb=64,
            track_memory=True,
        )
        for trial in trials:
            row = trial.row()
            assert row["memory_budget_mb"] == 64
            assert row["backend"] == "csr"
            assert "peak_mb" in row

    def test_untracked_rows_have_no_peak_column(self, workload):
        pair, seeds = workload
        trials = compare_matchers(pair, seeds, ["degree-sequence"])
        assert "peak_mb" not in trials[0].row()

    def test_outer_peak_survives_nested_tracker(self):
        """A nested tracker's reset must not erase the outer peak."""
        with MemoryTracker() as outer:
            spike = np.ones(8 * 1024 * 1024, dtype=np.uint8)  # 8 MiB
            del spike
            with MemoryTracker() as inner:
                small = np.ones(1024 * 1024, dtype=np.uint8)  # 1 MiB
                del small
        assert inner.peak_mb == pytest.approx(1.0, abs=0.5)
        assert outer.peak_mb >= 7.5  # the 8 MiB spike, not the 1 MiB
