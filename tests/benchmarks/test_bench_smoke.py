"""Smoke coverage for the benchmark suite itself.

The ``benchmarks/`` directory regenerates every paper table and figure,
but until now nothing in tier-1 noticed when a benchmark module rotted
(an import error or a renamed helper only surfaced in the scheduled CI
bench job).  Two layers of protection:

- **import wall** — every ``bench_*.py`` module must import cleanly,
  parametrized per file so a failure names the culprit;
- **micro runs** — representative benchmark entry points execute one
  micro-sized config end-to-end.  These carry the ``slow`` marker so
  ``-m "not slow"`` keeps the fastest loop available, while default
  runs (and CI) still execute them.
"""

import importlib.util
import pathlib
import sys

import pytest

BENCHMARKS_DIR = (pathlib.Path(__file__).resolve().parents[2] / "benchmarks")
BENCH_FILES = sorted(BENCHMARKS_DIR.glob("bench_*.py"))


def load_bench_module(path: pathlib.Path):
    """Import a benchmark file under a smoke-test namespace."""
    name = f"bench_smoke_{path.stem}"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(name, None)
    return module


def test_benchmark_directory_found():
    assert BENCH_FILES, f"no bench_*.py under {BENCHMARKS_DIR}"


@pytest.mark.parametrize(
    "path", BENCH_FILES, ids=[p.stem for p in BENCH_FILES]
)
def test_imports_cleanly(path):
    """Every benchmark module imports without executing a workload."""
    module = load_bench_module(path)
    assert module.__doc__, f"{path.stem} lost its module docstring"


@pytest.mark.slow
def test_micro_parallel_scaling_curve():
    """bench_parallel's curve helper at micro scale, links asserted."""
    module = load_bench_module(BENCHMARKS_DIR / "bench_parallel.py")
    curve = module.scaling_curve(workers_counts=(1, 2), scale=7)
    assert set(curve) == {1, 2}
    assert all(elapsed > 0 for elapsed in curve.values())


@pytest.mark.slow
def test_micro_parallel_workload_builder():
    """bench_parallel's workload recipe holds at micro scale too."""
    module = load_bench_module(BENCHMARKS_DIR / "bench_parallel.py")
    pair, seeds = module.build_workload(scale=7, seed=0)
    assert pair.g1.num_nodes > 0
    assert seeds
    result = module.run_matcher(pair, seeds, workers=1)
    assert result.num_links >= len(seeds)


@pytest.mark.slow
def test_micro_table2_ladder():
    """The Table-2 driver the R-MAT benches wrap, at micro scale."""
    from repro.experiments import table2_rmat

    result = table2_rmat.run(scales=(6, 7), edge_factor=8, seed=0)
    assert len(result.rows) == 2
    assert result.rows[0]["relative_time"] == 1.0


@pytest.mark.slow
def test_micro_blocked_budget_curve():
    """bench_blocked's curve helper at micro scale, links asserted."""
    module = load_bench_module(BENCHMARKS_DIR / "bench_blocked.py")
    curve = module.budget_curve(budgets=(None, 1), scale=7)
    assert set(curve) == {None, 1}
    for elapsed, peak_mb in curve.values():
        assert elapsed > 0
        assert peak_mb >= 0


@pytest.mark.slow
def test_micro_million_rung_driver():
    """bench_blocked's million-rung driver, at micro scale."""
    module = load_bench_module(BENCHMARKS_DIR / "bench_blocked.py")
    row = module.million_rung(scale=8, edge_factor=4, memory_budget_mb=4)
    assert row["memory_budget_mb"] == 4
    assert row["nodes"] > 0


@pytest.mark.slow
def test_micro_incremental_warm_vs_cold():
    """bench_incremental's carve+apply loop at micro scale, links asserted."""
    from repro.core.config import MatcherConfig
    from repro.core.matcher import UserMatching
    from repro.incremental import GraphDelta, IncrementalReconciler

    module = load_bench_module(BENCHMARKS_DIR / "bench_incremental.py")
    pair, seeds = module.build_workload(n=400, seed=1)
    base1, base2, stream1, stream2 = module.carve(pair, 0.05)
    engine = IncrementalReconciler(MatcherConfig(**module._CONFIG))
    engine.start(base1, base2, seeds)
    outcome = engine.apply(
        GraphDelta.build(added_edges1=stream1, added_edges2=stream2)
    )
    cold = UserMatching(
        MatcherConfig(backend="csr", **module._CONFIG)
    ).run(pair.g1, pair.g2, seeds)
    assert outcome.result.links == cold.links
