"""Unit tests for the structural-feature (ReFeX-style) baseline."""

import pytest

from repro.baselines.structural_features import (
    StructuralFeatureMatcher,
    recursive_features,
)
from repro.evaluation.metrics import evaluate
from repro.graphs.graph import Graph


class TestRecursiveFeatures:
    def test_feature_count(self, small_pa):
        feats = recursive_features(small_pa, levels=2)
        assert all(len(v) == 5 for v in feats.values())  # 1 + 2*2

    def test_level_zero_is_degree(self, star):
        feats = recursive_features(star, levels=1)
        assert feats[0][0] == 5.0
        assert feats[1][0] == 1.0

    def test_level_one_aggregates(self, star):
        feats = recursive_features(star, levels=1)
        # leaf's only neighbor is the hub of degree 5
        assert feats[1][1] == 5.0  # mean
        assert feats[1][2] == 5.0  # max

    def test_isolated_node_zeros(self):
        g = Graph()
        g.add_node(7)
        feats = recursive_features(g, levels=2)
        assert feats[7] == [0.0, 0.0, 0.0, 0.0, 0.0]

    def test_negative_levels_raises(self, star):
        with pytest.raises(Exception):
            recursive_features(star, levels=-1)


class TestStructuralFeatureMatcher:
    def test_includes_seeds(self, pa_pair, pa_seeds):
        result = StructuralFeatureMatcher().run(
            pa_pair.g1, pa_pair.g2, pa_seeds
        )
        for v1, v2 in pa_seeds.items():
            assert result.links[v1] == v2

    def test_one_to_one(self, pa_pair, pa_seeds):
        result = StructuralFeatureMatcher().run(
            pa_pair.g1, pa_pair.g2, pa_seeds
        )
        assert len(set(result.links.values())) == len(result.links)

    def test_hub_behaviour(self, pa_pair, pa_seeds):
        """Feature matching finds *some* hubs but confuses similar ones.

        This is the weakness the paper's §2 points at: degree-profile
        features cannot distinguish structurally similar high-degree
        nodes, while witness counting can.
        """
        result = StructuralFeatureMatcher(quantile=0.4).run(
            pa_pair.g1, pa_pair.g2, pa_seeds
        )
        hubs = sorted(
            pa_pair.identity,
            key=lambda v: -pa_pair.g1.degree(v),
        )[:5]
        correct_hubs = sum(1 for h in hubs if result.links.get(h) == h)
        assert correct_hubs >= 1
        # Mistaken hubs are assigned to other *high-degree* nodes —
        # feature-similar impostors.
        for h in hubs:
            image = result.links.get(h)
            if image is not None and image != h:
                assert pa_pair.g2.degree(image) > 4 * (
                    2 * pa_pair.g2.num_edges / pa_pair.g2.num_nodes
                )

    def test_no_seeds_matches_nothing(self, pa_pair):
        result = StructuralFeatureMatcher().run(pa_pair.g1, pa_pair.g2, {})
        assert result.links == {}

    def test_weaker_than_user_matching(self, pa_pair, pa_seeds):
        """The paper's §2 argument: features alone are less precise
        than witness counting."""
        from repro.core.config import MatcherConfig
        from repro.core.matcher import UserMatching

        witness = UserMatching(
            MatcherConfig(threshold=2, iterations=2)
        ).run(pa_pair.g1, pa_pair.g2, pa_seeds)
        features = StructuralFeatureMatcher().run(
            pa_pair.g1, pa_pair.g2, pa_seeds
        )
        rep_w = evaluate(witness, pa_pair)
        rep_f = evaluate(features, pa_pair)
        assert rep_w.precision > rep_f.precision

    def test_invalid_params(self):
        with pytest.raises(Exception):
            StructuralFeatureMatcher(quantile=0.0)
        with pytest.raises(Exception):
            StructuralFeatureMatcher(max_candidates=0)
