"""Unit tests for the baseline matchers."""

import pytest

from repro.baselines.common_neighbors import CommonNeighborsMatcher
from repro.baselines.degree_matcher import DegreeSequenceMatcher
from repro.baselines.narayanan_shmatikov import NarayananShmatikovMatcher
from repro.core.config import TiePolicy
from repro.evaluation.metrics import evaluate


class TestCommonNeighborsMatcher:
    def test_includes_seeds(self, pa_pair, pa_seeds):
        result = CommonNeighborsMatcher().run(pa_pair.g1, pa_pair.g2, pa_seeds)
        for v1, v2 in pa_seeds.items():
            assert result.links[v1] == v2

    def test_no_bucketing_single_phase_per_iteration(self, pa_pair, pa_seeds):
        result = CommonNeighborsMatcher(iterations=2).run(
            pa_pair.g1, pa_pair.g2, pa_seeds
        )
        assert len(result.phases) <= 2
        assert all(p.bucket_exponent is None for p in result.phases)

    def test_one_to_one(self, pa_pair, pa_seeds):
        result = CommonNeighborsMatcher(iterations=2).run(
            pa_pair.g1, pa_pair.g2, pa_seeds
        )
        assert len(set(result.links.values())) == len(result.links)

    def test_tie_policy_configurable(self, pa_pair, pa_seeds):
        skip = CommonNeighborsMatcher(
            iterations=2, tie_policy=TiePolicy.SKIP
        ).run(pa_pair.g1, pa_pair.g2, pa_seeds)
        forced = CommonNeighborsMatcher(
            iterations=2, tie_policy=TiePolicy.LOWEST_ID
        ).run(pa_pair.g1, pa_pair.g2, pa_seeds)
        assert len(forced.links) >= len(skip.links)

    def test_user_matching_beats_baseline_precision(self, pa_pair, pa_seeds):
        from repro.core.config import MatcherConfig
        from repro.core.matcher import UserMatching

        full = UserMatching(
            MatcherConfig(threshold=2, iterations=2)
        ).run(pa_pair.g1, pa_pair.g2, pa_seeds)
        baseline = CommonNeighborsMatcher(
            threshold=1, iterations=2, tie_policy=TiePolicy.LOWEST_ID
        ).run(pa_pair.g1, pa_pair.g2, pa_seeds)
        rep_full = evaluate(full, pa_pair)
        rep_base = evaluate(baseline, pa_pair)
        assert rep_full.precision >= rep_base.precision


class TestNarayananShmatikov:
    def test_includes_seeds(self, pa_pair, pa_seeds):
        result = NarayananShmatikovMatcher(max_sweeps=2).run(
            pa_pair.g1, pa_pair.g2, pa_seeds
        )
        for v1, v2 in pa_seeds.items():
            assert result.links[v1] == v2

    def test_expands_beyond_seeds(self, pa_pair, pa_seeds):
        result = NarayananShmatikovMatcher(max_sweeps=2).run(
            pa_pair.g1, pa_pair.g2, pa_seeds
        )
        assert result.num_new_links > 0

    def test_reasonable_precision_on_easy_instance(self, pa_pair, pa_seeds):
        result = NarayananShmatikovMatcher(max_sweeps=2).run(
            pa_pair.g1, pa_pair.g2, pa_seeds
        )
        report = evaluate(result, pa_pair)
        assert report.precision > 0.6

    def test_eccentricity_raises_precision(self, pa_pair, pa_seeds):
        lax = NarayananShmatikovMatcher(
            eccentricity_threshold=0.0, max_sweeps=2
        ).run(pa_pair.g1, pa_pair.g2, pa_seeds)
        strict = NarayananShmatikovMatcher(
            eccentricity_threshold=1.5, max_sweeps=2
        ).run(pa_pair.g1, pa_pair.g2, pa_seeds)
        assert len(strict.links) <= len(lax.links)

    def test_invalid_params(self):
        with pytest.raises(Exception):
            NarayananShmatikovMatcher(eccentricity_threshold=-1)
        with pytest.raises(Exception):
            NarayananShmatikovMatcher(max_sweeps=0)

    def test_no_rematch_mode_keeps_one_to_one(self, pa_pair, pa_seeds):
        result = NarayananShmatikovMatcher(
            max_sweeps=2, allow_rematch=False
        ).run(pa_pair.g1, pa_pair.g2, pa_seeds)
        assert len(set(result.links.values())) == len(result.links)


class TestDegreeSequenceMatcher:
    def test_matches_everything(self, pa_pair, pa_seeds):
        result = DegreeSequenceMatcher().run(pa_pair.g1, pa_pair.g2, pa_seeds)
        assert result.num_links >= min(
            pa_pair.g1.num_nodes, pa_pair.g2.num_nodes
        ) - len(pa_seeds)

    def test_max_matches(self, pa_pair, pa_seeds):
        result = DegreeSequenceMatcher(max_matches=5).run(
            pa_pair.g1, pa_pair.g2, pa_seeds
        )
        assert result.num_new_links == 5

    def test_weaker_than_user_matching(self, pa_pair, pa_seeds):
        from repro.core.config import MatcherConfig
        from repro.core.matcher import UserMatching

        structural = UserMatching(
            MatcherConfig(threshold=2, iterations=2)
        ).run(pa_pair.g1, pa_pair.g2, pa_seeds)
        naive = DegreeSequenceMatcher().run(pa_pair.g1, pa_pair.g2, pa_seeds)
        rep_s = evaluate(structural, pa_pair)
        rep_n = evaluate(naive, pa_pair)
        assert rep_s.precision > rep_n.precision
