"""Shared fixtures for the test suite.

Fixtures produce small, seeded, deterministic workloads so tests are fast
and reproducible.  networkx is used in some tests as an *oracle* to
cross-validate our graph algorithms — it is never imported by the library
itself.
"""

from __future__ import annotations

import pytest

from repro.generators.erdos_renyi import gnp_graph
from repro.generators.preferential_attachment import (
    preferential_attachment_graph,
)
from repro.graphs.graph import Graph
from repro.sampling.edge_sampling import independent_copies
from repro.seeds.generators import sample_seeds


@pytest.fixture
def triangle() -> Graph:
    """The 3-cycle."""
    return Graph.from_edges([(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def path4() -> Graph:
    """The path 0-1-2-3."""
    return Graph.from_edges([(0, 1), (1, 2), (2, 3)])


@pytest.fixture
def star() -> Graph:
    """A star with center 0 and 5 leaves."""
    return Graph.from_edges([(0, i) for i in range(1, 6)])


@pytest.fixture
def small_pa() -> Graph:
    """A small PA graph (600 nodes, m=5), deterministic."""
    return preferential_attachment_graph(600, 5, seed=42)


@pytest.fixture
def small_er() -> Graph:
    """A small G(n, p) graph, deterministic."""
    return gnp_graph(300, 0.05, seed=42)


@pytest.fixture
def pa_pair(small_pa):
    """Copies of the small PA graph (s = 0.6) with identity ground truth."""
    return independent_copies(small_pa, s1=0.6, seed=7)


@pytest.fixture
def pa_seeds(pa_pair):
    """10% seed links for the PA pair."""
    return sample_seeds(pa_pair, 0.10, seed=11)
