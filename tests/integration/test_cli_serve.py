"""CLI coverage for ``repro serve``."""

import json
import re
import threading
import urllib.request

from repro.cli import main


class TestServeCommand:
    def test_demo_serves_and_stops(self, capsys, tmp_path):
        ckpt = tmp_path / "serve.npz"
        assert (
            main(
                [
                    "serve",
                    "--demo",
                    "--n", "300",
                    "--port", "0",
                    "--checkpoint", str(ckpt),
                    "--serve-seconds", "1.5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "listening on http://127.0.0.1:" in out
        assert "POST /delta" in out
        assert ckpt.exists()
        assert (tmp_path / "serve.npz.jsonl").exists()

    def test_empty_start_answers_queries(self, capsys):
        # Run the CLI on a thread, scrape the bound port from stdout,
        # and hit /health with the stdlib while it is up.
        done = threading.Event()
        codes = []

        def run():
            codes.append(
                main(
                    [
                        "serve",
                        "--port", "0",
                        "--serve-seconds", "4",
                    ]
                )
            )
            done.set()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        import time

        port = None
        for _ in range(40):
            time.sleep(0.1)
            out = capsys.readouterr().out
            found = re.search(r"http://127\.0\.0\.1:(\d+)", out)
            if found:
                port = int(found.group(1))
                break
        assert port is not None, "serve never printed its port"
        doc = json.loads(
            urllib.request.urlopen(
                f"http://127.0.0.1:{port}/health", timeout=10
            ).read()
        )
        assert doc["status"] == "ok"
        assert doc["links"] == 0  # started on empty graphs
        assert done.wait(30)
        assert codes == [0]

    def test_resume_requires_checkpoint_flag(self, capsys):
        assert main(["serve", "--resume", "--port", "0"]) == 2
        assert "requires --checkpoint" in capsys.readouterr().err

    def test_resume_missing_checkpoint_fails_loud(self, capsys, tmp_path):
        code = main(
            [
                "serve",
                "--resume",
                "--port", "0",
                "--checkpoint", str(tmp_path / "absent.npz"),
            ]
        )
        assert code == 1
        assert "does not" in capsys.readouterr().err
