"""Repo-level consistency checks: docs, registry, benches stay in sync."""

from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]


class TestExperimentCoverage:
    def test_every_paper_result_has_a_cli_experiment(self):
        """Each table/figure of the paper's §5 maps to an experiment id."""
        from repro.cli import EXPERIMENTS

        paper_results = {
            "fig2": "Figure 2",
            "table2": "Table 2",
            "table3-facebook": "Table 3 left",
            "table3-enron": "Table 3 right",
            "fig3": "Figure 3",
            "table4": "Table 4",
            "table5-dblp": "Table 5 top-left",
            "table5-gowalla": "Table 5 top-right",
            "table5-wikipedia": "Table 5 bottom",
            "fig4-dblp": "Figure 4 left",
            "fig4-gowalla": "Figure 4 right",
            "attack": "§5 attack",
            "ablation-bucketing": "§5 ablation",
            "ablation-wikipedia": "§5 ablation",
        }
        for exp_id, label in paper_results.items():
            assert exp_id in EXPERIMENTS, f"{label} missing ({exp_id})"

    def test_every_paper_result_has_a_bench(self):
        bench_dir = REPO / "benchmarks"
        benches = {p.stem for p in bench_dir.glob("bench_*.py")}
        for required in (
            "bench_fig2_pa",
            "bench_table2_rmat",
            "bench_table3_facebook",
            "bench_table3_enron",
            "bench_fig3_cascade",
            "bench_table4_affiliation",
            "bench_table5_dblp",
            "bench_table5_gowalla",
            "bench_table5_wikipedia",
            "bench_fig4_degree",
            "bench_attack",
            "bench_ablation",
        ):
            assert required in benches

    def test_design_md_references_every_experiment_module(self):
        design = (REPO / "DESIGN.md").read_text(encoding="utf-8")
        import repro.experiments as experiments_pkg

        for name in experiments_pkg.__all__:
            if name == "ExperimentResult":
                continue
            assert name in design, f"DESIGN.md missing {name}"

    def test_experiments_md_covers_every_table_and_figure(self):
        text = (REPO / "EXPERIMENTS.md").read_text(encoding="utf-8")
        for heading in (
            "Figure 2",
            "Table 2",
            "Table 3",
            "Figure 3",
            "Table 4",
            "Table 5",
            "Figure 4",
            "attack",
            "bucketing",
        ):
            assert heading.lower() in text.lower()


class TestDocsPresence:
    @pytest.mark.parametrize(
        "filename", ["README.md", "DESIGN.md", "EXPERIMENTS.md"]
    )
    def test_doc_exists_and_substantial(self, filename):
        path = REPO / filename
        assert path.exists()
        assert len(path.read_text(encoding="utf-8")) > 2000

    def test_examples_exist(self):
        examples = list((REPO / "examples").glob("*.py"))
        assert len(examples) >= 5


class TestPublicApiDocumented:
    def test_all_public_callables_have_docstrings(self):
        import repro

        for name in repro.__all__:
            if name == "__version__":
                continue
            obj = getattr(repro, name)
            assert getattr(obj, "__doc__", None), f"{name} undocumented"

    def test_experiment_drivers_have_docstrings(self):
        from repro.cli import EXPERIMENTS

        for name, (fn, _desc) in EXPERIMENTS.items():
            target = getattr(fn, "__wrapped__", fn)
            if target.__name__ == "<lambda>":
                continue
            assert target.__doc__, f"driver {name} undocumented"
