"""Integration tests: full pipelines through the public API."""

import pytest

from repro import (
    CommonNeighborsMatcher,
    MatcherConfig,
    UserMatching,
    attacked_copies,
    cascade_copies,
    correlated_community_copies,
    evaluate,
    gnp_graph,
    independent_copies,
    preferential_attachment_graph,
    reconcile,
    sample_seeds,
)
from repro.generators.affiliation import affiliation_graph
from repro.theory.predictions import recommended_threshold


class TestPaperPipelines:
    def test_er_pipeline_with_theory_threshold(self):
        """Section 4.1 end-to-end: ER graph, threshold 3, high precision."""
        g = gnp_graph(400, 0.07, seed=1)
        pair = independent_copies(g, 0.7, seed=2)
        seeds = sample_seeds(pair, 0.15, seed=3)
        result = reconcile(
            pair.g1,
            pair.g2,
            seeds,
            threshold=recommended_threshold("er"),
            iterations=2,
        )
        report = evaluate(result, pair)
        assert report.precision > 0.95
        assert report.recall > 0.5

    def test_pa_pipeline(self):
        """Section 4.2 end-to-end: PA graph reconciliation."""
        g = preferential_attachment_graph(1500, 10, seed=4)
        pair = independent_copies(g, 0.6, seed=5)
        seeds = sample_seeds(pair, 0.08, seed=6)
        result = reconcile(pair.g1, pair.g2, seeds, threshold=2, iterations=2)
        report = evaluate(result, pair)
        assert report.precision > 0.9
        assert report.recall > 0.6

    def test_cascade_pipeline(self):
        g = preferential_attachment_graph(1200, 12, seed=7)
        pair = cascade_copies(g, 0.15, seed=8)
        seeds = sample_seeds(pair, 0.1, seed=9)
        result = reconcile(pair.g1, pair.g2, seeds, threshold=2)
        report = evaluate(result, pair)
        assert report.good > len(seeds)

    def test_affiliation_pipeline(self):
        net = affiliation_graph(
            400,
            400,
            memberships_per_user=8,
            uniform_mix=0.9,
            founding_prob=0.4,
            copy_factor=0.3,
            seed=10,
        )
        pair = correlated_community_copies(net, 0.75, seed=11)
        seeds = sample_seeds(pair, 0.1, seed=12)
        result = UserMatching(
            MatcherConfig(threshold=3, iterations=3)
        ).run(pair.g1, pair.g2, seeds)
        report = evaluate(result, pair)
        assert report.new_error_rate < 0.1

    def test_attack_pipeline(self):
        g = preferential_attachment_graph(800, 12, seed=13)
        pair = attacked_copies(g, s=0.75, seed=14)
        seeds = {
            v1: v2
            for v1, v2 in sample_seeds(pair, 0.1, seed=15).items()
            if not isinstance(v1, tuple)
        }
        result = reconcile(pair.g1, pair.g2, seeds, threshold=2, iterations=2)
        report = evaluate(result, pair)
        # Under attack, precision holds up (twins count as correct).
        assert report.precision > 0.9

    def test_baseline_vs_full_integration(self):
        g = preferential_attachment_graph(1000, 8, seed=16)
        pair = independent_copies(g, 0.5, seed=17)
        seeds = sample_seeds(pair, 0.1, seed=18)
        full = UserMatching(
            MatcherConfig(threshold=2, iterations=2)
        ).run(pair.g1, pair.g2, seeds)
        base = CommonNeighborsMatcher(iterations=2).run(
            pair.g1, pair.g2, seeds
        )
        rep_full = evaluate(full, pair)
        rep_base = evaluate(base, pair)
        assert rep_full.recall >= rep_base.recall - 0.05
        assert rep_full.precision >= 0.85


class TestIoIntegration:
    def test_save_load_match(self, tmp_path):
        from repro.graphs.io import read_edge_list, write_edge_list

        g = preferential_attachment_graph(500, 6, seed=19)
        pair = independent_copies(g, 0.6, seed=20)
        p1, p2 = tmp_path / "g1.tsv", tmp_path / "g2.tsv"
        write_edge_list(pair.g1, p1)
        write_edge_list(pair.g2, p2)
        g1, g2 = read_edge_list(p1), read_edge_list(p2)
        seeds = sample_seeds(pair, 0.1, seed=21)
        a = reconcile(g1, g2, seeds, threshold=2)
        b = reconcile(pair.g1, pair.g2, seeds, threshold=2)
        assert a.links == b.links


class TestVersionExports:
    def test_version(self):
        import repro

        assert repro.__version__
        for name in repro.__all__:
            if name == "__version__":
                continue
            assert hasattr(repro, name), name
