"""CLI chart-rendering integration tests."""

from repro.cli import EXPERIMENTS, _chart_for, main
from repro.experiments.common import ExperimentResult


class TestChartSelection:
    def test_seed_prob_threshold_series(self):
        result = ExperimentResult(name="x", description="d")
        result.rows = [
            {"seed_prob": 0.05, "threshold": 2, "recall": 0.9},
            {"seed_prob": 0.10, "threshold": 2, "recall": 0.95},
        ]
        chart = _chart_for(result)
        assert chart is not None
        assert "threshold = 2" in chart

    def test_degree_series(self):
        result = ExperimentResult(name="x", description="d")
        result.rows = [
            {"degree": "1", "recall": 0.1},
            {"degree": "2+", "recall": 0.8},
        ]
        chart = _chart_for(result)
        assert "degree" in chart

    def test_generic_first_column(self):
        result = ExperimentResult(name="x", description="d")
        result.rows = [{"bucketing": "on", "recall": 0.8}]
        chart = _chart_for(result)
        assert "bucketing" in chart

    def test_no_recall_no_chart(self):
        result = ExperimentResult(name="x", description="d")
        result.rows = [{"scale": 11, "relative_time": 1.0}]
        assert _chart_for(result) is None


class TestCliChartFlag:
    def test_run_with_chart(self, capsys, monkeypatch):
        def tiny(seed=0):
            result = ExperimentResult(name="tiny", description="d")
            result.rows = [{"seed_prob": 0.1, "threshold": 2, "recall": 0.5}]
            return result

        monkeypatch.setitem(EXPERIMENTS, "tiny", (tiny, "tiny"))
        assert main(["run", "tiny", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "recall by seed probability" in out
        assert "|" in out
