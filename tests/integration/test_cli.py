"""CLI smoke tests."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out
        assert "attack" in out

    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "facebook" in out
        assert "63,731" in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_catalog_complete(self):
        for required in (
            "fig2",
            "table2",
            "table3-facebook",
            "table3-enron",
            "fig3",
            "table4",
            "table5-dblp",
            "table5-gowalla",
            "table5-wikipedia",
            "fig4-dblp",
            "fig4-gowalla",
            "attack",
            "ablation-bucketing",
        ):
            assert required in EXPERIMENTS

    def test_run_small_experiment(self, capsys, monkeypatch):
        """Run one real (tiny) experiment through the CLI path."""
        from repro.experiments import table2_rmat

        monkeypatch.setitem(
            EXPERIMENTS,
            "table2",
            (
                lambda seed=0: table2_rmat.run(scales=(6, 7), seed=seed),
                "tiny",
            ),
        )
        assert main(["run", "table2", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "relative_time" in out


class TestMatchersCommand:
    def test_matchers_lists_the_registry(self, capsys):
        assert main(["matchers"]) == 0
        out = capsys.readouterr().out
        for name in (
            "user-matching",
            "mapreduce-user-matching",
            "common-neighbors",
            "narayanan-shmatikov",
            "degree-sequence",
            "structural-features",
            "reconciler",
        ):
            assert name in out

    def test_matchers_shows_descriptions(self, capsys):
        from repro.registry import available_matchers

        main(["matchers"])
        out = capsys.readouterr().out
        assert available_matchers()["user-matching"] in out


class TestMatcherFlag:
    def _tiny_wikipedia(self, monkeypatch):
        from repro.experiments import ablation

        def tiny(seed=0, matcher=None):
            return ablation.run_simple_on_wikipedia(
                n_concepts=600,
                link_fraction=0.2,
                matcher=matcher,
                seed=seed,
            )

        monkeypatch.setitem(EXPERIMENTS, "ablation-wikipedia", (tiny, "tiny"))

    def test_matcher_resolution_produces_table(self, capsys, monkeypatch):
        self._tiny_wikipedia(monkeypatch)
        assert (
            main(
                [
                    "run",
                    "ablation-wikipedia",
                    "--matcher",
                    "common-neighbors",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "user-matching" in out
        assert "common-neighbors" in out
        assert "recall" in out

    def test_unknown_matcher_rejected(self, capsys, monkeypatch):
        self._tiny_wikipedia(monkeypatch)
        assert (main(["run", "ablation-wikipedia", "--matcher", "bogus"]) == 2)
        err = capsys.readouterr().err
        assert "unknown matcher" in err

    def test_matcher_on_unsupported_experiment(self, capsys, monkeypatch):
        from repro.experiments import table2_rmat

        monkeypatch.setitem(
            EXPERIMENTS,
            "table2",
            (
                lambda seed=0: table2_rmat.run(scales=(6,), seed=seed),
                "tiny",
            ),
        )
        assert (main(["run", "table2", "--matcher", "common-neighbors"]) == 2)
        err = capsys.readouterr().err
        assert "not supported" in err
