"""CLI coverage for ``repro stream`` and ``repro run --resume``."""

import pytest

from repro.cli import main


class TestStreamCommand:
    def test_stream_prints_batches(self, capsys):
        assert (
            main(
                [
                    "stream",
                    "--n", "300",
                    "--batches", "2",
                    "--seed", "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "cold start" in out
        assert "warm_ms" in out

    def test_stream_compare_cold_columns(self, capsys):
        assert (
            main(
                [
                    "stream",
                    "--n", "300",
                    "--batches", "2",
                    "--compare-cold",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "cold_ms" in out
        assert "speedup" in out

    def test_stream_checkpoint_and_resume(self, capsys, tmp_path):
        ck = str(tmp_path / "stream.npz")
        assert (
            main(
                [
                    "stream",
                    "--n", "300",
                    "--batches", "2",
                    "--checkpoint", ck,
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            main(
                [
                    "stream",
                    "--n", "300",
                    "--batches", "2",
                    "--checkpoint", ck,
                    "--resume",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "resumed" in out

    def test_resume_without_checkpoint_rejected(self, capsys):
        assert main(["stream", "--resume"]) == 2
        assert "--checkpoint" in capsys.readouterr().err


class TestRunResumeFlags:
    def test_run_resume_requires_checkpoint(self, capsys):
        assert main(["run", "fig2", "--resume"]) == 2
        assert "--checkpoint" in capsys.readouterr().err

    def test_run_checkpoint_unsupported_experiment_rejected(self, capsys):
        assert (main(["run", "percolation", "--checkpoint", "x.npz"]) == 2)
        assert "not supported" in capsys.readouterr().err

    def test_run_fig2_checkpoint_then_resume(
        self, capsys, tmp_path, monkeypatch
    ):
        from repro.cli import EXPERIMENTS
        from repro.experiments import fig2_pa

        def tiny_fig2(seed=0, checkpoint_path=None, warm_start=False):
            return fig2_pa.run(
                n=260,
                m=3,
                seed_probs=(0.2,),
                thresholds=(2,),
                iterations=1,
                seed=seed,
                checkpoint_path=checkpoint_path,
                warm_start=warm_start,
            )

        monkeypatch.setitem(EXPERIMENTS, "fig2", (tiny_fig2, "tiny"))
        ck = str(tmp_path / "fig2.npz")
        assert main(["run", "fig2", "--checkpoint", ck]) == 0
        first = capsys.readouterr().out
        assert (tmp_path / "fig2-p0.2-t2.npz").exists()
        assert (main(["run", "fig2", "--checkpoint", ck, "--resume"]) == 0)
        second = capsys.readouterr().out

        def quality(out):
            return [
                line
                for line in out.splitlines()
                if line.strip() and line.lstrip()[0].isdigit()
            ]

        # Identical workload resumed from checkpoint: identical table
        # rows except the timing column.
        assert len(quality(first)) == len(quality(second))
