"""CLI ``--candidate-pruning`` / ``--pruning-frontier`` / ``--mmap`` plumbing."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestRunPruningFlags:
    def test_pruning_forwarded_to_experiment(self, capsys, monkeypatch):
        from repro.experiments import table2_rmat

        seen = {}
        original = table2_rmat.run

        def spy(seed=0, candidate_pruning="none", pruning_frontier=0):
            seen["candidate_pruning"] = candidate_pruning
            seen["pruning_frontier"] = pruning_frontier
            return original(
                scales=(7, 8),
                edge_factor=4,
                seed=seed,
                backend="csr",
                candidate_pruning=candidate_pruning,
                pruning_frontier=pruning_frontier,
            )

        monkeypatch.setitem(EXPERIMENTS, "table2", (spy, "spy"))
        assert (
            main(
                [
                    "run",
                    "table2",
                    "--candidate-pruning",
                    "community",
                    "--pruning-frontier",
                    "1",
                ]
            )
            == 0
        )
        assert seen["candidate_pruning"] == "community"
        assert seen["pruning_frontier"] == 1
        out = capsys.readouterr().out
        # Pruned rows surface the trade, not just the links.
        assert "candidate_pairs" in out
        assert "pruning_recall_cost" in out

    def test_mmap_forwarded(self, capsys, monkeypatch):
        from repro.experiments import table2_rmat

        seen = {}
        original = table2_rmat.run

        def spy(seed=0, mmap=False):
            seen["mmap"] = mmap
            return original(
                scales=(7, 8),
                edge_factor=4,
                seed=seed,
                backend="csr",
                mmap=mmap,
            )

        monkeypatch.setitem(EXPERIMENTS, "table2", (spy, "spy"))
        assert main(["run", "table2", "--mmap"]) == 0
        assert seen["mmap"] is True

    def test_unknown_mode_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "fig2", "--candidate-pruning", "bogus"])
        assert "invalid choice" in capsys.readouterr().err

    def test_negative_frontier_rejected(self, capsys):
        assert main(["run", "fig2", "--pruning-frontier", "-1"]) == 2
        err = capsys.readouterr().err
        assert "--pruning-frontier must be >= 0" in err

    def test_pruning_rejected_for_unsupported_experiment(self, capsys):
        assert (
            main(["run", "percolation", "--candidate-pruning", "none"])
            == 2
        )
        err = capsys.readouterr().err
        assert "--candidate-pruning is not supported" in err

    def test_mmap_rejected_for_unsupported_experiment(self, capsys):
        assert main(["run", "percolation", "--mmap"]) == 2
        assert "--mmap is not supported" in capsys.readouterr().err

    def test_fig2_supports_the_flags(self):
        """The fig2/table2 drivers are the advertised consumers."""
        import inspect

        for exp_name in ("fig2", "table2", "table2-million"):
            params = inspect.signature(
                EXPERIMENTS[exp_name][0]
            ).parameters
            assert "candidate_pruning" in params, exp_name
            assert "pruning_frontier" in params, exp_name
            assert "mmap" in params, exp_name

    @pytest.mark.parametrize(
        "flag", ["--candidate-pruning", "--pruning-frontier", "--mmap"]
    )
    def test_help_mentions_flag(self, capsys, flag):
        with pytest.raises(SystemExit):
            main(["run", "--help"])
        assert flag in capsys.readouterr().out
