"""Smoke tests: every example script runs and reports sensible results.

Examples are executed in-process (importing their ``main``) with their
default parameters, capturing stdout.  These are the slowest tests in the
suite (~1 min total) but they guarantee the documented entry points work.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "precision" in out
        assert "recall" in out

    def test_deanonymize(self, capsys):
        load_example("deanonymize_network").main()
        out = capsys.readouterr().out
        assert "re-identified" in out

    def test_cross_network_scopes(self, capsys):
        load_example("cross_network_scopes").main()
        out = capsys.readouterr().out
        assert "matched" in out

    def test_wikipedia(self, capsys):
        load_example("wikipedia_interlanguage").main()
        out = capsys.readouterr().out
        assert "links" in out

    def test_attack(self, capsys):
        load_example("attack_robustness").main()
        out = capsys.readouterr().out
        assert "correctly linked" in out

    def test_all_examples_present(self):
        names = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
        assert {
            "quickstart",
            "deanonymize_network",
            "cross_network_scopes",
            "wikipedia_interlanguage",
            "attack_robustness",
        } <= names
