"""CLI ``--memory-budget-mb`` / ``--track-memory`` plumbing tests."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestRunMemoryBudget:
    def test_budget_forwarded_to_experiment(self, capsys, monkeypatch):
        from repro.experiments import table2_rmat

        seen = {}
        original = table2_rmat.run

        def spy(seed=0, memory_budget_mb=None):
            seen["memory_budget_mb"] = memory_budget_mb
            return original(
                scales=(7, 8),
                edge_factor=4,
                seed=seed,
                backend="csr",
                memory_budget_mb=memory_budget_mb,
            )

        monkeypatch.setitem(EXPERIMENTS, "table2", (spy, "spy"))
        assert main(["run", "table2", "--memory-budget-mb", "64"]) == 0
        assert seen["memory_budget_mb"] == 64
        out = capsys.readouterr().out
        assert "memory_budget_mb=64" in out

    def test_track_memory_forwarded(self, capsys, monkeypatch):
        from repro.experiments import table2_rmat

        seen = {}
        original = table2_rmat.run

        def spy(seed=0, track_memory=False):
            seen["track_memory"] = track_memory
            return original(
                scales=(7, 8),
                edge_factor=4,
                seed=seed,
                track_memory=track_memory,
            )

        monkeypatch.setitem(EXPERIMENTS, "table2", (spy, "spy"))
        assert main(["run", "table2", "--track-memory"]) == 0
        assert seen["track_memory"] is True
        assert "peak_mb" in capsys.readouterr().out

    def test_budget_rejected_for_unsupported_experiment(self, capsys):
        assert (main(["run", "percolation", "--memory-budget-mb", "64"]) == 2)
        err = capsys.readouterr().err
        assert "--memory-budget-mb is not supported" in err

    def test_invalid_budget_value_rejected(self, capsys):
        assert main(["run", "table2", "--memory-budget-mb", "0"]) == 2
        assert "--memory-budget-mb must be >= 1" in capsys.readouterr().err

    def test_million_rung_registered(self):
        assert "table2-million" in EXPERIMENTS

    def test_million_rung_smoke(self, capsys):
        """The million driver at micro scale through the real CLI path."""
        from repro.experiments.table2_rmat import run_million

        result = run_million(
            scale=8, edge_factor=4, memory_budget_mb=4, link_prob=0.2
        )
        assert len(result.rows) == 1
        row = result.rows[0]
        assert row["memory_budget_mb"] == 4
        assert row["nodes"] > 0
        assert "peak_rss_mb" in row  # POSIX: resource is available

    @pytest.mark.parametrize("flag", ["--memory-budget-mb", "--track-memory"])
    def test_help_mentions_flag(self, capsys, flag):
        with pytest.raises(SystemExit):
            main(["run", "--help"])
        assert flag in capsys.readouterr().out


class TestRunAllExcludesMillionRung:
    def test_all_skips_the_heavy_rung(self, monkeypatch):
        """`repro run all` must not launch a minutes-long RMAT20 run."""
        from repro import cli

        ran = []
        for exp_name, (fn, desc) in list(cli.EXPERIMENTS.items()):
            def spy(seed=0, _name=exp_name, **kwargs):
                ran.append(_name)
                from repro.experiments.common import ExperimentResult

                return ExperimentResult(name=_name, description=desc)

            monkeypatch.setitem(cli.EXPERIMENTS, exp_name, (spy, desc))
        assert cli.main(["run", "all"]) == 0
        assert "table2-million" not in ran
        assert "table2" in ran
