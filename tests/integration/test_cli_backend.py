"""CLI `--backend` plumbing tests."""

from repro.cli import main


class TestRunBackend:
    def test_backend_forwarded_to_experiment(self, capsys, monkeypatch):
        from repro.experiments import table2_rmat

        seen = {}
        original = table2_rmat.run

        def spy(seed=0, backend="dict"):
            seen.update({"seed": seed, "backend": backend})
            return original(
                scales=(7, 8), edge_factor=4, seed=seed, backend=backend
            )

        monkeypatch.setitem(
            __import__("repro.cli", fromlist=["EXPERIMENTS"]).EXPERIMENTS,
            "table2",
            (spy, "spy"),
        )
        assert main(["run", "table2", "--backend", "csr"]) == 0
        assert seen["backend"] == "csr"
        out = capsys.readouterr().out
        assert "backend=csr" in out

    def test_backend_rejected_for_unsupported_experiment(self, capsys):
        assert main(["run", "percolation", "--backend", "csr"]) == 2
        err = capsys.readouterr().err
        assert "--backend is not supported" in err

    def test_invalid_backend_value_rejected(self, capsys):
        import pytest

        with pytest.raises(SystemExit):
            main(["run", "table2", "--backend", "gpu"])

    def test_fig2_supports_backend_kwarg(self):
        import inspect

        from repro.experiments import fig2_pa, table2_rmat

        for fn in (fig2_pa.run, table2_rmat.run):
            assert "backend" in inspect.signature(fn).parameters
