"""Unit tests for RNG plumbing."""

import random

import numpy as np
import pytest

from repro.utils.rng import ensure_numpy_rng, ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_gives_fresh(self):
        assert isinstance(ensure_rng(None), random.Random)

    def test_int_reproducible(self):
        assert ensure_rng(7).random() == ensure_rng(7).random()

    def test_different_seeds_differ(self):
        assert ensure_rng(1).random() != ensure_rng(2).random()

    def test_passthrough(self):
        rng = random.Random(3)
        assert ensure_rng(rng) is rng

    def test_from_numpy_generator_deterministic(self):
        a = ensure_rng(np.random.default_rng(5)).random()
        b = ensure_rng(np.random.default_rng(5)).random()
        assert a == b

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestEnsureNumpyRng:
    def test_none_gives_fresh(self):
        assert isinstance(ensure_numpy_rng(None), np.random.Generator)

    def test_int_reproducible(self):
        a = ensure_numpy_rng(7).random()
        b = ensure_numpy_rng(7).random()
        assert a == b

    def test_passthrough(self):
        rng = np.random.default_rng(3)
        assert ensure_numpy_rng(rng) is rng

    def test_from_python_random(self):
        a = ensure_numpy_rng(random.Random(5)).random()
        b = ensure_numpy_rng(random.Random(5)).random()
        assert a == b

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError):
            ensure_numpy_rng(3.5)

    def test_numpy_integer_accepted(self):
        rng = ensure_numpy_rng(np.int64(4))
        assert isinstance(rng, np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(1, 5)) == 5

    def test_reproducible(self):
        a = [r.random() for r in spawn_rngs(9, 3)]
        b = [r.random() for r in spawn_rngs(9, 3)]
        assert a == b

    def test_streams_decorrelated(self):
        r1, r2 = spawn_rngs(9, 2)
        assert r1.random() != r2.random()

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)

    def test_zero_count(self):
        assert spawn_rngs(1, 0) == []
