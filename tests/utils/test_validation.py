"""Unit tests for validation helpers."""

import pytest

from repro.utils.timing import Timer
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0, 1])
    def test_valid(self, value):
        assert check_probability("p", value) == float(value)

    @pytest.mark.parametrize("value", [-0.1, 1.1, float("nan"), "x", True])
    def test_invalid(self, value):
        with pytest.raises(ValueError, match="p"):
            check_probability("p", value)


class TestCheckPositive:
    def test_valid(self):
        assert check_positive("n", 3) == 3

    @pytest.mark.parametrize("value", [0, -1, 1.5, True, None])
    def test_invalid(self, value):
        with pytest.raises(ValueError, match="n"):
            check_positive("n", value)


class TestCheckNonNegative:
    def test_valid_zero(self):
        assert check_non_negative("m", 0) == 0

    @pytest.mark.parametrize("value", [-1, 0.5, False])
    def test_invalid(self, value):
        with pytest.raises(ValueError, match="m"):
            check_non_negative("m", value)


class TestCheckFraction:
    def test_valid(self):
        assert check_fraction("f", 0.3) == 0.3

    @pytest.mark.parametrize("value", [0.0, -0.5, 1.5, float("nan")])
    def test_invalid(self, value):
        with pytest.raises(ValueError, match="f"):
            check_fraction("f", value)


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            sum(range(1000))
        assert t.elapsed > 0

    def test_restart(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        t.restart()
        assert t.elapsed == 0.0
        assert first >= 0.0
