"""Unit tests for the Chung–Lu generator."""

import pytest

from repro.generators.chung_lu import (
    chung_lu_graph,
    expected_chung_lu_edges,
    power_law_weights,
)


class TestPowerLawWeights:
    def test_count_and_floor(self):
        w = power_law_weights(500, exponent=2.5, min_weight=2.0, seed=1)
        assert len(w) == 500
        assert min(w) >= 2.0

    def test_cap_applied(self):
        w = power_law_weights(
            500, exponent=2.0, min_weight=1.0, max_weight=50.0, seed=1
        )
        assert max(w) <= 50.0

    def test_heavy_tail_exists(self):
        w = power_law_weights(3000, exponent=2.2, min_weight=1.0, seed=2)
        assert max(w) > 20 * (sum(w) / len(w))

    def test_invalid_exponent(self):
        with pytest.raises(Exception):
            power_law_weights(10, exponent=1.0)

    def test_invalid_min_weight(self):
        with pytest.raises(Exception):
            power_law_weights(10, min_weight=0.0)

    def test_reproducible(self):
        assert power_law_weights(50, seed=9) == power_law_weights(50, seed=9)


class TestChungLu:
    def test_all_nodes_present(self):
        g = chung_lu_graph([1.0] * 100, seed=1)
        assert g.num_nodes == 100

    def test_edge_count_near_expectation(self):
        weights = [10.0] * 200
        g = chung_lu_graph(weights, seed=3)
        expected = expected_chung_lu_edges(weights)
        assert abs(g.num_edges - expected) < 0.3 * expected

    def test_high_weight_gets_high_degree(self):
        weights = [1.0] * 300 + [100.0]
        g = chung_lu_graph(weights, seed=4)
        hub_degree = g.degree(300)
        rest = [g.degree(i) for i in range(300)]
        assert hub_degree > 10 * (sum(rest) / len(rest) + 0.01)

    def test_zero_weights(self):
        g = chung_lu_graph([0.0] * 50, seed=1)
        assert g.num_edges == 0

    def test_negative_weight_raises(self):
        with pytest.raises(Exception):
            chung_lu_graph([1.0, -2.0])

    def test_empty(self):
        g = chung_lu_graph([], seed=1)
        assert g.num_nodes == 0

    def test_single_node(self):
        g = chung_lu_graph([5.0], seed=1)
        assert g.num_nodes == 1
        assert g.num_edges == 0

    def test_reproducible(self):
        w = power_law_weights(200, seed=5)
        assert chung_lu_graph(w, seed=6) == chung_lu_graph(w, seed=6)

    def test_no_self_loops(self):
        g = chung_lu_graph([5.0] * 100, seed=7)
        for u, v in g.edges():
            assert u != v
