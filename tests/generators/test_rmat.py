"""Unit tests for the R-MAT generator."""

import pytest

from repro.errors import GeneratorParameterError
from repro.generators.rmat import rmat_graph, rmat_scale_series
from repro.graphs.stats import gini_coefficient


class TestRmat:
    def test_nodes_within_address_space(self):
        g = rmat_graph(8, 1000, seed=1)
        for node in g.nodes():
            assert 0 <= node < 256

    def test_edges_bounded_by_attempts(self):
        g = rmat_graph(10, 5000, seed=1)
        assert 0 < g.num_edges <= 5000

    def test_reproducible(self):
        assert rmat_graph(9, 2000, seed=5) == rmat_graph(9, 2000, seed=5)

    def test_different_seeds_differ(self):
        assert rmat_graph(9, 2000, seed=5) != rmat_graph(9, 2000, seed=6)

    def test_skewed_degrees_with_default_quadrants(self):
        g = rmat_graph(11, 16 * (1 << 11), seed=2)
        assert gini_coefficient(g) > 0.4

    def test_uniform_quadrants_are_not_skewed(self):
        g = rmat_graph(
            11, 16 * (1 << 11), quadrants=(0.25, 0.25, 0.25, 0.25), seed=2
        )
        assert gini_coefficient(g) < 0.35

    def test_no_self_loops(self):
        g = rmat_graph(8, 2000, seed=3)
        for u, v in g.edges():
            assert u != v

    def test_zero_edges(self):
        g = rmat_graph(5, 0, seed=1)
        assert g.num_edges == 0

    def test_invalid_quadrants_sum(self):
        with pytest.raises(GeneratorParameterError):
            rmat_graph(5, 10, quadrants=(0.5, 0.5, 0.5, 0.5))

    def test_negative_quadrant(self):
        with pytest.raises(GeneratorParameterError):
            rmat_graph(5, 10, quadrants=(1.2, -0.1, 0.0, -0.1))

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            rmat_graph(0, 10)


class TestScaleSeries:
    def test_series_lengths(self):
        graphs = rmat_scale_series((6, 8), edge_factor=8, seed=1)
        assert len(graphs) == 2
        assert graphs[0].num_nodes < graphs[1].num_nodes

    def test_series_edge_growth(self):
        graphs = rmat_scale_series((6, 8, 10), edge_factor=8, seed=1)
        assert graphs[0].num_edges < graphs[1].num_edges < graphs[2].num_edges
