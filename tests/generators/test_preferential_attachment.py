"""Unit tests for the Bollobás–Riordan PA generator."""

import pytest

from repro.generators.preferential_attachment import (
    pa_expected_min_m,
    preferential_attachment_graph,
)
from repro.graphs.ops import connected_components
from repro.graphs.stats import degree_array, gini_coefficient


class TestPAStructure:
    def test_node_count(self):
        g = preferential_attachment_graph(500, 3, seed=1)
        assert g.num_nodes == 500

    def test_edge_count_at_most_nm(self):
        n, m = 500, 4
        g = preferential_attachment_graph(n, m, seed=1)
        assert g.num_edges <= n * m
        # collapses drop only a small fraction
        assert g.num_edges > 0.8 * n * m

    def test_reproducible(self):
        a = preferential_attachment_graph(300, 3, seed=5)
        b = preferential_attachment_graph(300, 3, seed=5)
        assert a == b

    def test_no_self_loops(self):
        g = preferential_attachment_graph(400, 2, seed=2)
        for u, v in g.edges():
            assert u != v

    def test_connected_for_m_at_least_two(self):
        g = preferential_attachment_graph(500, 2, seed=3)
        comps = connected_components(g)
        assert len(comps[0]) > 0.95 * g.num_nodes

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            preferential_attachment_graph(0, 3)
        with pytest.raises(ValueError):
            preferential_attachment_graph(10, 0)


class TestPADegrees:
    def test_skewed_degree_distribution(self):
        g = preferential_attachment_graph(2000, 4, seed=7)
        assert gini_coefficient(g) > 0.25

    def test_early_birds_have_high_degree(self):
        """Lemma 5/7 empirically: early nodes accumulate degree."""
        g = preferential_attachment_graph(3000, 5, seed=9)
        early = [g.degree(u) for u in range(10)]
        late = [g.degree(u) for u in range(2900, 3000)]
        assert min(early) > max(late) / 2
        assert sum(early) / len(early) > 5 * sum(late) / len(late)

    def test_max_degree_grows_with_n(self):
        small = preferential_attachment_graph(500, 3, seed=4)
        large = preferential_attachment_graph(4000, 3, seed=4)
        assert large.max_degree() > small.max_degree()

    def test_most_nodes_have_low_degree(self):
        g = preferential_attachment_graph(2000, 3, seed=6)
        degs = degree_array(g)
        assert (degs <= 2 * 3).mean() > 0.5


class TestHelper:
    def test_pa_expected_min_m_exact(self):
        assert pa_expected_min_m(1.0) == 22

    def test_pa_expected_min_m_half(self):
        assert pa_expected_min_m(0.5) == 88

    def test_pa_expected_min_m_invalid(self):
        with pytest.raises(Exception):
            pa_expected_min_m(0.0)
