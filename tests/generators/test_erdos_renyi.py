"""Unit tests for the Erdős–Rényi generators."""

import math

import pytest

from repro.errors import GeneratorParameterError
from repro.generators.erdos_renyi import (
    connectivity_threshold,
    expected_gnp_edges,
    gnm_graph,
    gnp_graph,
)
from repro.graphs.ops import connected_components


class TestGnp:
    def test_node_count(self):
        g = gnp_graph(100, 0.1, seed=1)
        assert g.num_nodes == 100

    def test_reproducible(self):
        a = gnp_graph(200, 0.05, seed=3)
        b = gnp_graph(200, 0.05, seed=3)
        assert a == b

    def test_different_seeds_differ(self):
        a = gnp_graph(200, 0.05, seed=3)
        b = gnp_graph(200, 0.05, seed=4)
        assert a != b

    def test_p_zero(self):
        g = gnp_graph(50, 0.0, seed=1)
        assert g.num_edges == 0

    def test_p_one_is_complete(self):
        g = gnp_graph(10, 1.0, seed=1)
        assert g.num_edges == 45

    def test_edge_count_concentrates(self):
        n, p = 400, 0.05
        g = gnp_graph(n, p, seed=5)
        mean = expected_gnp_edges(n, p)
        std = math.sqrt(mean * (1 - p))
        assert abs(g.num_edges - mean) < 6 * std

    def test_above_connectivity_threshold_connected(self):
        n = 300
        p = 3 * connectivity_threshold(n)
        g = gnp_graph(n, p, seed=7)
        assert len(connected_components(g)) == 1

    def test_no_self_loops(self):
        g = gnp_graph(100, 0.2, seed=2)
        for u, v in g.edges():
            assert u != v

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            gnp_graph(10, 1.5)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            gnp_graph(-1, 0.5)

    def test_single_node(self):
        g = gnp_graph(1, 0.9, seed=1)
        assert g.num_nodes == 1
        assert g.num_edges == 0

    def test_degree_distribution_roughly_binomial(self):
        n, p = 500, 0.04
        g = gnp_graph(n, p, seed=11)
        degrees = [g.degree(u) for u in g.nodes()]
        mean = sum(degrees) / n
        assert abs(mean - (n - 1) * p) < 2.0


class TestGnm:
    def test_exact_edge_count(self):
        g = gnm_graph(50, 100, seed=1)
        assert g.num_edges == 100

    def test_max_edges(self):
        g = gnm_graph(6, 15, seed=1)
        assert g.num_edges == 15  # complete K6

    def test_too_many_edges_raises(self):
        with pytest.raises(GeneratorParameterError):
            gnm_graph(5, 11)

    def test_zero_edges(self):
        g = gnm_graph(5, 0, seed=1)
        assert g.num_edges == 0
        assert g.num_nodes == 5

    def test_reproducible(self):
        assert gnm_graph(40, 60, seed=9) == gnm_graph(40, 60, seed=9)


class TestHelpers:
    def test_expected_edges(self):
        assert expected_gnp_edges(10, 0.5) == pytest.approx(22.5)

    def test_connectivity_threshold_small_n(self):
        assert connectivity_threshold(1) == 1.0

    def test_connectivity_threshold_decreasing(self):
        assert connectivity_threshold(100) > connectivity_threshold(1000)
