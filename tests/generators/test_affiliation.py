"""Unit tests for the Affiliation Networks generator."""

import subprocess
import sys
from collections import defaultdict

import pytest

from repro.generators.affiliation import AffiliationNetwork, affiliation_graph


@pytest.fixture(scope="module")
def net() -> AffiliationNetwork:
    return affiliation_graph(
        400,
        400,
        memberships_per_user=6,
        uniform_mix=0.9,
        founding_prob=0.4,
        copy_factor=0.3,
        seed=1,
    )


class TestAffiliationStructure:
    def test_user_count(self, net):
        assert net.bipartite.num_users == 400

    def test_interest_count_at_least_target(self, net):
        assert net.bipartite.num_affiliations >= 400

    def test_fold_matches_bipartite(self, net):
        g = net.graph
        for aff, members in net.communities.items():
            members = sorted(members)
            for i, u in enumerate(members):
                for v in members[i + 1 :]:
                    assert g.has_edge(u, v)

    def test_fold_has_all_users(self, net):
        assert net.graph.num_nodes == 400

    def test_users_distinguishable(self, net):
        """Most users must have unique interest portfolios; duplicate
        portfolios are automorphic and unmatchable by any structural
        algorithm."""
        groups = defaultdict(list)
        for u in net.bipartite.users():
            groups[frozenset(net.bipartite.affiliations_of(u))].append(u)
        dups = sum(len(v) for v in groups.values() if len(v) > 1)
        assert dups < 0.05 * net.bipartite.num_users

    def test_not_complete_graph(self, net):
        g = net.graph
        max_edges = g.num_nodes * (g.num_nodes - 1) / 2
        assert g.num_edges < 0.5 * max_edges

    def test_fold_with_interests_subset(self, net):
        some = list(net.bipartite.affiliations())[:10]
        sub = net.fold_with_interests(some)
        assert sub.num_edges <= net.graph.num_edges
        assert sub.num_nodes == net.graph.num_nodes

    def test_reproducible(self):
        a = affiliation_graph(100, 80, seed=3)
        b = affiliation_graph(100, 80, seed=3)
        assert a.graph == b.graph

    def test_memberships_close_to_target(self, net):
        avg = net.bipartite.num_memberships / net.bipartite.num_users
        assert 4 <= avg <= 8  # target 6, founding/stall variance allowed

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            affiliation_graph(0, 10)
        with pytest.raises(ValueError):
            affiliation_graph(10, 0)
        with pytest.raises(ValueError):
            affiliation_graph(10, 10, memberships_per_user=0)

    def test_communities_property(self, net):
        comm = net.communities
        assert len(comm) == net.bipartite.num_affiliations
        total = sum(len(m) for m in comm.values())
        assert total == net.bipartite.num_memberships


class TestHashSeedIndependence:
    """A seeded generator must not consume its RNG in set-iteration
    order: with hash randomization on, "the same seed" would silently
    mean a different graph in every process (the bug behind
    QUALITY_pruning.json disagreeing across CI runners)."""

    FINGERPRINT = (
        "import hashlib\n"
        "from repro.generators.affiliation import affiliation_graph\n"
        "net = affiliation_graph(150, 20, seed=7)\n"
        "edges = sorted(tuple(sorted(e, key=repr)) for e in "
        "net.graph.edges())\n"
        "print(hashlib.sha256(repr(edges).encode()).hexdigest())\n"
    )

    def fingerprint(self, hash_seed):
        import pathlib

        repo = pathlib.Path(__file__).resolve().parents[2]
        proc = subprocess.run(
            [sys.executable, "-c", self.FINGERPRINT],
            capture_output=True,
            text=True,
            env={"PYTHONHASHSEED": hash_seed, "PYTHONPATH": "src"},
            cwd=str(repo),
            check=True,
        )
        return proc.stdout.strip()

    def test_identical_graph_across_hash_seeds(self):
        prints = {self.fingerprint(h) for h in ("0", "1", "12345")}
        assert len(prints) == 1, (
            "affiliation_graph(seed=7) differs across PYTHONHASHSEED "
            "values — some RNG draw iterates a set"
        )
