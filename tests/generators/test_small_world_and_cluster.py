"""Unit tests for Watts–Strogatz and powerlaw-cluster generators."""

import pytest

from repro.errors import GeneratorParameterError
from repro.generators.powerlaw_cluster import powerlaw_cluster_graph
from repro.generators.small_world import watts_strogatz_graph
from repro.graphs.stats import average_clustering, average_degree


class TestWattsStrogatz:
    def test_ring_no_rewiring(self):
        g = watts_strogatz_graph(20, 4, 0.0, seed=1)
        assert g.num_edges == 40  # n*k/2
        for u in range(20):
            assert g.degree(u) == 4

    def test_rewiring_preserves_edge_count_roughly(self):
        g = watts_strogatz_graph(100, 6, 0.3, seed=2)
        assert abs(g.num_edges - 300) <= 10

    def test_high_clustering_low_rewire(self):
        low = watts_strogatz_graph(300, 8, 0.01, seed=3)
        high = watts_strogatz_graph(300, 8, 0.9, seed=3)
        assert average_clustering(low) > average_clustering(high)

    def test_odd_k_raises(self):
        with pytest.raises(GeneratorParameterError):
            watts_strogatz_graph(10, 3, 0.1)

    def test_k_too_large_raises(self):
        with pytest.raises(GeneratorParameterError):
            watts_strogatz_graph(10, 10, 0.1)

    def test_reproducible(self):
        a = watts_strogatz_graph(50, 4, 0.2, seed=5)
        b = watts_strogatz_graph(50, 4, 0.2, seed=5)
        assert a == b


class TestPowerlawCluster:
    def test_node_count(self):
        g = powerlaw_cluster_graph(300, 4, 0.5, seed=1)
        assert g.num_nodes == 300

    def test_clustering_higher_with_triads(self):
        no_triads = powerlaw_cluster_graph(400, 4, 0.0, seed=2)
        triads = powerlaw_cluster_graph(400, 4, 0.9, seed=2)
        assert average_clustering(triads) > average_clustering(no_triads)

    def test_m_too_large_raises(self):
        with pytest.raises(GeneratorParameterError):
            powerlaw_cluster_graph(5, 5, 0.5)

    def test_reproducible(self):
        a = powerlaw_cluster_graph(200, 3, 0.4, seed=7)
        b = powerlaw_cluster_graph(200, 3, 0.4, seed=7)
        assert a == b

    def test_m_per_node_low_degree_mass(self):
        m_list = [2] * 500
        g = powerlaw_cluster_graph(500, 10, 0.0, seed=3, m_per_node=m_list)
        assert average_degree(g) < 8

    def test_m_per_node_too_short_raises(self):
        with pytest.raises(GeneratorParameterError):
            powerlaw_cluster_graph(100, 5, 0.5, m_per_node=[3] * 10)

    def test_m_per_node_heterogeneous(self):
        m_list = [1] * 250 + [20] * 250
        g = powerlaw_cluster_graph(500, 20, 0.0, seed=4, m_per_node=m_list)
        late_small = [g.degree(u) for u in range(100, 250)]
        late_big = [g.degree(u) for u in range(350, 500)]
        assert sum(late_big) / len(late_big) > 3 * (
            sum(late_small) / len(late_small)
        )
