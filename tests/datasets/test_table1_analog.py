"""Table 1 analog: default-scale dataset stand-ins have the properties
their experiments rely on."""

import pytest

from repro.datasets.registry import DATASETS, load_dataset
from repro.graphs.stats import average_degree, gini_coefficient


class TestDefaultScaleBuilders:
    """Load the lighter registry entries at their default scale."""

    def test_pa_default(self):
        g = load_dataset("pa", seed=0)
        assert g.num_nodes == 20_000
        assert gini_coefficient(g) > 0.25  # skewed, per the PA theory

    def test_facebook_default(self):
        g = load_dataset("facebook", seed=0)
        assert g.num_nodes == 8000
        assert 30 < average_degree(g) < 70  # WOSN-09 regime (48.5)

    def test_enron_default(self):
        g = load_dataset("enron", seed=0)
        assert g.num_nodes == 4500
        assert 10 < average_degree(g) < 32  # sparse regime (~20)

    def test_affiliation_default(self):
        net = load_dataset("affiliation", seed=0)
        assert net.bipartite.num_users == 2000
        assert net.graph.num_edges > 0

    def test_wikipedia_default(self):
        wiki = load_dataset("wikipedia", seed=0)
        assert wiki.pair.g1.num_nodes > wiki.pair.g2.num_nodes
        assert len(wiki.interlanguage_links) > 0

    def test_rmat24_default(self):
        g = load_dataset("rmat24", seed=0)
        assert g.num_nodes <= 1 << 14
        assert gini_coefficient(g) > 0.3

    def test_registry_scaling_documented(self):
        """Every entry records the paper's original size for the
        Table 1 analog."""
        for spec in DATASETS.values():
            assert spec.paper_nodes > 0
            assert spec.paper_edges > 0
            assert spec.notes
