"""Unit tests for the Wikipedia simulator and the dataset registry."""

import pytest

from repro.datasets.registry import DATASETS, load_dataset
from repro.datasets.wikipedia import synthetic_wikipedia_pair
from repro.errors import DatasetError


@pytest.fixture(scope="module")
def wiki():
    return synthetic_wikipedia_pair(n_concepts=1500, seed=1)


class TestWikipedia:
    def test_disjoint_id_spaces(self, wiki):
        for node in wiki.pair.g2.nodes():
            assert str(node).startswith("de:")
        for node in wiki.pair.g1.nodes():
            assert not str(node).startswith("de:")

    def test_identity_maps_concepts(self, wiki):
        for v1, v2 in wiki.pair.identity.items():
            assert v2 == f"de:{v1}"

    def test_language_a_larger(self, wiki):
        assert wiki.pair.g1.num_nodes > wiki.pair.g2.num_nodes

    def test_interlanguage_links_incomplete(self, wiki):
        assert (0 < len(wiki.interlanguage_links) < len(wiki.pair.identity))

    def test_interlanguage_links_have_errors(self, wiki):
        wrong = sum(
            1
            for v1, v2 in wiki.interlanguage_links.items()
            if wiki.pair.identity.get(v1) != v2
        )
        assert wrong > 0

    def test_links_remain_injective(self, wiki):
        values = list(wiki.interlanguage_links.values())
        assert len(set(values)) == len(values)

    def test_partial_overlap(self, wiki):
        shared = len(wiki.pair.identity)
        assert shared < wiki.pair.g1.num_nodes

    def test_reproducible(self):
        a = synthetic_wikipedia_pair(n_concepts=400, seed=3)
        b = synthetic_wikipedia_pair(n_concepts=400, seed=3)
        assert a.pair.g1 == b.pair.g1
        assert a.interlanguage_links == b.interlanguage_links

    def test_invalid_noise(self):
        with pytest.raises(DatasetError):
            synthetic_wikipedia_pair(n_concepts=100, noise_fraction=-1)


class TestRegistry:
    def test_catalog_has_all_paper_datasets(self):
        for name in (
            "pa",
            "rmat24",
            "rmat26",
            "rmat28",
            "affiliation",
            "facebook",
            "enron",
            "dblp",
            "gowalla",
            "wikipedia",
        ):
            assert name in DATASETS

    def test_paper_sizes_recorded(self):
        assert DATASETS["facebook"].paper_nodes == 63_731
        assert DATASETS["enron"].paper_edges == 367_662

    def test_load_unknown_raises(self):
        with pytest.raises(DatasetError):
            load_dataset("nope")

    def test_load_enron(self):
        g = load_dataset("enron", seed=1)
        assert g.num_nodes > 0

    def test_kinds_are_known(self):
        kinds = {spec.kind for spec in DATASETS.values()}
        assert kinds <= {"graph", "temporal", "affiliation", "wikipedia"}
