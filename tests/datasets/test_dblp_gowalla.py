"""Unit tests for the DBLP and Gowalla simulators."""

import pytest

from repro.datasets.dblp import synthetic_dblp
from repro.datasets.gowalla import synthetic_gowalla
from repro.sampling.temporal_split import split_by_parity


@pytest.fixture(scope="module")
def dblp():
    return synthetic_dblp(
        n_authors=1500, years=12, papers_per_year=150, seed=1
    )


@pytest.fixture(scope="module")
def gowalla():
    return synthetic_gowalla(n_users=800, months=12, seed=1)


class TestDblp:
    def test_years_range(self, dblp):
        assert all(0 <= t < 12 for t in dblp.timestamps())

    def test_authors_bounded(self, dblp):
        assert dblp.num_nodes <= 1500

    def test_parity_split_overlaps(self, dblp):
        pair = split_by_parity(dblp)
        # recurring teams must create an overlap between the slices
        assert len(pair.identity) > 0.05 * dblp.num_nodes

    def test_event_volume(self, dblp):
        # >= one co-authorship pair per paper on average
        assert dblp.num_events >= 12 * 150

    def test_reproducible(self):
        a = synthetic_dblp(n_authors=200, years=4, papers_per_year=30, seed=5)
        b = synthetic_dblp(n_authors=200, years=4, papers_per_year=30, seed=5)
        assert sorted(a.events()) == sorted(b.events())

    def test_heavy_tailed_productivity(self, dblp):
        pair = split_by_parity(dblp)
        degs = sorted(
            (pair.g1.degree(u) for u in pair.g1.nodes()), reverse=True
        )
        assert degs[0] > 5 * (sum(degs) / len(degs))

    def test_invalid_team_size(self):
        with pytest.raises(Exception):
            synthetic_dblp(max_team_size=1)


class TestGowalla:
    def test_returns_events_and_friends(self, gowalla):
        temporal, friends = gowalla
        assert temporal.num_events > 0
        assert friends.num_nodes == 800

    def test_events_only_between_friends(self, gowalla):
        temporal, friends = gowalla
        for u, v, _t in list(temporal.events())[:500]:
            assert friends.has_edge(u, v)

    def test_months_range(self, gowalla):
        temporal, _ = gowalla
        assert all(0 <= t < 12 for t in temporal.timestamps())

    def test_parity_split_produces_pair(self, gowalla):
        temporal, _ = gowalla
        pair = split_by_parity(temporal)
        assert len(pair.identity) > 100

    def test_reproducible(self):
        t1, f1 = synthetic_gowalla(n_users=200, months=6, seed=9)
        t2, f2 = synthetic_gowalla(n_users=200, months=6, seed=9)
        assert f1 == f2
        assert sorted(t1.events()) == sorted(t2.events())

    def test_homophily_same_cell_friends_colocate_more(self, gowalla):
        temporal, friends = gowalla
        pair = split_by_parity(temporal)
        # co-location slices must be sparser than the friendship graph
        assert pair.g1.num_edges < friends.num_edges
