"""Unit tests for the Facebook-like and Enron-like stand-ins."""

import pytest

from repro.datasets.synthetic import enron_like, facebook_like
from repro.graphs.stats import (
    average_clustering,
    average_degree,
    degree_array,
    gini_coefficient,
)


@pytest.fixture(scope="module")
def fb():
    return facebook_like(2500, seed=1)


@pytest.fixture(scope="module")
def enron():
    return enron_like(2500, seed=1)


class TestFacebookLike:
    def test_average_degree_near_wosn(self, fb):
        # WOSN-09 has 48.5; accept a generous band at reduced scale.
        assert 30 < average_degree(fb) < 70

    def test_low_degree_mass_exists(self, fb):
        degs = degree_array(fb)
        assert 0.10 < float((degs <= 5).mean()) < 0.45

    def test_heavy_tail(self, fb):
        assert fb.max_degree() > 10 * average_degree(fb)

    def test_clustering_nontrivial(self, fb):
        assert average_clustering(fb, sample=300, seed=2) > 0.05

    def test_reproducible(self):
        assert facebook_like(500, seed=3) == facebook_like(500, seed=3)

    def test_skewed(self, fb):
        assert gini_coefficient(fb) > 0.4


class TestEnronLike:
    def test_average_degree_near_enron(self, enron):
        # Enron has ~20.
        assert 10 < average_degree(enron) < 32

    def test_sparse_with_hubs(self, enron):
        assert enron.max_degree() > 5 * average_degree(enron)

    def test_most_nodes_low_degree(self, enron):
        degs = degree_array(enron)
        assert float((degs <= 10).mean()) > 0.4

    def test_reproducible(self):
        assert enron_like(500, seed=4) == enron_like(500, seed=4)

    def test_invalid_average_degree(self):
        with pytest.raises(ValueError):
            enron_like(100, average_degree=0)
