"""Unit tests for seed-link generation."""

import pytest

from repro.seeds.generators import (
    degree_biased_seeds,
    noisy_seeds,
    sample_seeds,
    top_degree_seeds,
)


class TestSampleSeeds:
    def test_rate(self, pa_pair):
        seeds = sample_seeds(pa_pair, 0.2, seed=1)
        n = len(pa_pair.identity)
        assert 0.12 * n < len(seeds) < 0.28 * n

    def test_zero_probability(self, pa_pair):
        assert sample_seeds(pa_pair, 0.0, seed=1) == {}

    def test_full_probability(self, pa_pair):
        assert sample_seeds(pa_pair, 1.0, seed=1) == pa_pair.identity

    def test_subset_of_identity(self, pa_pair):
        seeds = sample_seeds(pa_pair, 0.3, seed=2)
        for v1, v2 in seeds.items():
            assert pa_pair.identity[v1] == v2

    def test_reproducible(self, pa_pair):
        assert sample_seeds(pa_pair, 0.1, seed=3) == sample_seeds(
            pa_pair, 0.1, seed=3
        )

    def test_invalid_probability(self, pa_pair):
        with pytest.raises(ValueError):
            sample_seeds(pa_pair, -0.1)


class TestDegreeBiasedSeeds:
    def test_bias_toward_high_degree(self, pa_pair):
        seeds = degree_biased_seeds(pa_pair, 0.15, seed=4)
        uniform = sample_seeds(pa_pair, 0.15, seed=4)
        deg = lambda s: (
            sum(pa_pair.g1.degree(v) for v in s) / len(s) if s else 0
        )
        assert deg(seeds) > deg(uniform)

    def test_expected_count_close(self, pa_pair):
        seeds = degree_biased_seeds(pa_pair, 0.15, seed=5)
        target = 0.15 * len(pa_pair.identity)
        assert 0.4 * target < len(seeds) < 2.2 * target

    def test_empty_identity(self):
        from repro.graphs.graph import Graph
        from repro.sampling.pair import GraphPair

        pair = GraphPair(g1=Graph(), g2=Graph(), identity={})
        assert degree_biased_seeds(pair, 0.5, seed=1) == {}


class TestTopDegreeSeeds:
    def test_exact_count(self, pa_pair):
        assert len(top_degree_seeds(pa_pair, 25)) == 25

    def test_selects_highest(self, pa_pair):
        seeds = top_degree_seeds(pa_pair, 10)
        min_seed_deg = min(
            min(pa_pair.g1.degree(v1), pa_pair.g2.degree(v2))
            for v1, v2 in seeds.items()
        )
        others = [
            min(pa_pair.g1.degree(v1), pa_pair.g2.degree(v2))
            for v1, v2 in pa_pair.identity.items()
            if v1 not in seeds
        ]
        assert min_seed_deg >= max(others)

    def test_count_beyond_population(self, pa_pair):
        seeds = top_degree_seeds(pa_pair, 10 ** 9)
        assert len(seeds) == len(pa_pair.identity)

    def test_negative_raises(self, pa_pair):
        with pytest.raises(Exception):
            top_degree_seeds(pa_pair, -1)

    def test_deterministic(self, pa_pair):
        assert top_degree_seeds(pa_pair, 20) == top_degree_seeds(pa_pair, 20)


class TestNoisySeeds:
    def test_error_rate_applied(self, pa_pair):
        clean = sample_seeds(pa_pair, 0.3, seed=6)
        noisy = noisy_seeds(pa_pair, 0.3, 0.2, seed=6)
        assert len(noisy) == len(clean)
        wrong = sum(
            1
            for v1, v2 in noisy.items()
            if pa_pair.identity[v1] != v2
        )
        expected = int(len(noisy) * 0.2)
        assert abs(wrong - expected) <= 2

    def test_zero_error_rate_is_clean(self, pa_pair):
        noisy = noisy_seeds(pa_pair, 0.3, 0.0, seed=7)
        assert all(pa_pair.identity[v1] == v2 for v1, v2 in noisy.items())

    def test_remains_injective(self, pa_pair):
        noisy = noisy_seeds(pa_pair, 0.3, 0.3, seed=8)
        assert len(set(noisy.values())) == len(noisy)

    def test_corrupted_seeds_point_to_real_nodes(self, pa_pair):
        noisy = noisy_seeds(pa_pair, 0.3, 0.3, seed=9)
        for v2 in noisy.values():
            assert pa_pair.g2.has_node(v2)
