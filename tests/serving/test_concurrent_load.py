"""Concurrent-load equivalence: many keep-alive readers against a
primary plus two replicas *while deltas stream*, with every versioned
read checked against the primary's snapshot at that exact version and
every connection's version sequence checked for monotonicity."""

import sys
import threading
import time
from pathlib import Path

import pytest

from repro.serving import (
    ReconciliationService,
    ReplicaService,
    ServerThread,
    ServingClient,
)

from serving_helpers import cold_links, make_engine
from test_replica import wait_caught_up

sys.path.insert(
    0, str(Path(__file__).resolve().parents[2] / "scripts")
)
from load_gen import run_load  # noqa: E402

READER_THREADS = 8


def version_snapshots(workload):
    """``{version: links}`` for every prefix of the delta stream."""
    pair, seeds, deltas = workload
    engine = make_engine(pair, seeds)
    snapshots = {0: dict(engine.links)}
    for version, delta in enumerate(deltas, start=1):
        engine.apply(delta)
        snapshots[version] = dict(engine.links)
    return snapshots


@pytest.fixture
def cluster(tmp_path, workload):
    """A durable primary plus two live replicas, nothing applied yet."""
    pair, seeds, _deltas = workload
    ckpt = tmp_path / "p.npz"
    primary = ServerThread(
        ReconciliationService(
            make_engine(pair, seeds),
            checkpoint_path=ckpt,
            checkpoint_every=100,
        )
    )
    primary.start()
    log = str(ckpt) + ".jsonl"
    replicas = []
    for _ in range(2):
        h = ServerThread(
            ReplicaService.follow(log, follow_interval=0.005)
        )
        h.start()
        replicas.append(h)
    yield primary, replicas
    for h in replicas:
        h.stop()
    primary.stop()


class TestConcurrentLoad:
    def test_versioned_reads_match_primary_snapshots(
        self, workload, cluster
    ):
        pair, seeds, deltas = workload
        primary, replicas = cluster
        snapshots = version_snapshots(workload)
        harnesses = [primary, *replicas]
        stop = threading.Event()
        failures: list = []

        def reader(index):
            harness = harnesses[index % len(harnesses)]
            versions = []
            try:
                with ServingClient(
                    "127.0.0.1", harness.port, timeout=30
                ) as client:
                    etag = None
                    while not stop.is_set():
                        response = client.get_conditional("/links", etag)
                        version = response.version
                        versions.append(version)
                        if response.status == 304:
                            continue
                        assert response.status == 200
                        doc = response.json()
                        assert doc["version"] == version
                        served = {v1: v2 for v1, v2 in doc["links"]}
                        # The heart of the test: a read at version v —
                        # on *any* server — is the primary's snapshot
                        # at v, even while writes are in flight.
                        assert served == snapshots[version], (
                            f"version {version} diverged on "
                            f"{harness.service!r}"
                        )
                        etag = response.etag
                # Version never moves backwards on one connection.
                assert versions == sorted(versions)
            except Exception as exc:  # noqa: BLE001 - collected
                failures.append((index, exc))

        threads = [
            threading.Thread(target=reader, args=(i,), daemon=True)
            for i in range(READER_THREADS)
        ]
        for thread in threads:
            thread.start()
        # Stream the deltas through the primary while readers hammer
        # all three servers.
        with ServingClient("127.0.0.1", primary.port) as writer:
            for delta in deltas:
                writer.apply_or_raise(delta)
                time.sleep(0.05)
        for h in replicas:
            wait_caught_up(h.service, batches=len(deltas))
        time.sleep(0.1)  # a last wave of reads at the final version
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
            assert not thread.is_alive(), "reader thread hung"
        assert not failures, failures[0]
        # Convergence: all three serve the identical final answer, and
        # it is the cold batch run's answer.
        expected = cold_links(pair, seeds, deltas)
        for harness in harnesses:
            with ServingClient("127.0.0.1", harness.port) as client:
                version, served = client.links_versioned()
            assert version == len(deltas)
            assert served == expected

    def test_load_gen_harness_verifies_and_reports(
        self, workload, cluster
    ):
        _pair, _seeds, deltas = workload
        primary, replicas = cluster
        with ServingClient("127.0.0.1", primary.port) as writer:
            for delta in deltas:
                writer.apply_or_raise(delta)
        for h in replicas:
            wait_caught_up(h.service, batches=len(deltas))
        targets = [
            ("127.0.0.1", h.port) for h in (primary, *replicas)
        ]
        report = run_load(
            targets, connections=6, requests=40, path="/links"
        )
        assert report.ok
        assert set(report.per_target) == {
            f"{host}:{port}" for host, port in targets
        }
        for entry in report.per_target.values():
            assert entry["errors"] == []
            assert entry["monotone"]
            assert entry["final_version"] == len(deltas)
            # Conditional re-reads hit 304 once the first response's
            # ETag is cached client-side.
            assert entry["not_modified"] >= entry["requests"] // 2
            assert entry["p50_ms"] > 0
            assert entry["rps"] > 0
