"""Regression: a hung server must fail a ``ServingClient`` request
with a loud :class:`ReproError` after the configured timeout — never
block the calling thread forever, and never silently retry (the
request may be half-processed server-side)."""

import socket
import threading
import time

import pytest

from repro.errors import ReproError
from repro.serving import ServingClient


@pytest.fixture
def hung_server():
    """A listener that accepts connections and then says nothing."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(8)
    listener.settimeout(0.1)  # so the accept loop notices shutdown
    accepted: list = []
    closing = threading.Event()

    def accept_loop():
        while not closing.is_set():
            try:
                conn, _addr = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            accepted.append(conn)  # hold it open, never respond

    thread = threading.Thread(target=accept_loop, daemon=True)
    thread.start()
    yield listener.getsockname()[1]
    closing.set()
    listener.close()
    for conn in accepted:
        conn.close()
    thread.join(timeout=5)


class TestClientTimeout:
    def test_read_timeout_raises_repro_error(self, hung_server):
        client = ServingClient(
            "127.0.0.1", hung_server, timeout=0.3
        )
        began = time.monotonic()
        with pytest.raises(ReproError, match="timed out after 0.3s"):
            client.request("GET", "/links")
        elapsed = time.monotonic() - began
        # One timeout window, not a silent retry loop doubling it.
        assert elapsed < 2.0
        # The poisoned keep-alive connection was dropped.
        assert client._conn is None

    def test_error_names_the_request_and_target(self, hung_server):
        with ServingClient(
            "127.0.0.1", hung_server, timeout=0.2
        ) as client:
            with pytest.raises(ReproError) as excinfo:
                client.request("GET", "/health")
        message = str(excinfo.value)
        assert "GET /health" in message
        assert f"127.0.0.1:{hung_server}" in message

    def test_typed_wrappers_propagate_the_timeout(self, hung_server):
        with ServingClient(
            "127.0.0.1", hung_server, timeout=0.2
        ) as client:
            with pytest.raises(ReproError, match="timed out"):
                client.health()

    def test_nonpositive_timeout_is_refused(self):
        with pytest.raises(ReproError, match="timeout must be > 0"):
            ServingClient("127.0.0.1", 1, timeout=0)
        with pytest.raises(ReproError, match="timeout must be > 0"):
            ServingClient("127.0.0.1", 1, timeout=-1.5)
