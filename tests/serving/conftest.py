"""Shared fixtures for the serving tests.

pytest-asyncio is not available in this container, so async service
tests run via ``asyncio.run`` inside synchronous test functions, and
server tests use the :class:`~repro.serving.server.ServerThread`
harness with the blocking stdlib client.
"""

from __future__ import annotations

import pytest

from repro.incremental.stream import build_stream_workload


@pytest.fixture(scope="module")
def workload():
    """Deterministic base pair + seeds + 4 delta batches."""
    return build_stream_workload(n=400, m=5, batches=4, seed=3)
