"""Integration tests: the HTTP server end to end, including the
kill-and-resume contract (served links bit-identical to a cold run)."""

import asyncio
import threading

import pytest

from repro.graphs.graph import Graph
from repro.incremental.delta import GraphDelta
from repro.incremental.engine import IncrementalReconciler
from repro.serving import (
    ReconciliationService,
    ServerThread,
    ServingClient,
)

from serving_helpers import CONFIG, cold_links, make_engine


@pytest.fixture
def harness(workload):
    pair, seeds, _deltas = workload
    service = ReconciliationService(make_engine(pair, seeds))
    h = ServerThread(service)
    h.start()
    yield h
    h.stop()


@pytest.fixture
def client(harness):
    with ServingClient("127.0.0.1", harness.port) as c:
        yield c


class TestRoutes:
    def test_health_and_stats(self, client):
        doc = client.health()
        assert doc["status"] == "ok"
        assert doc["queue_depth"] == 0
        stats = client.stats()
        assert stats["requests"]["total"] >= 1

    def test_links_snapshot_and_single_lookup(self, harness, client):
        served = client.links()
        assert served == harness.service.engine.links
        node, expected = next(iter(served.items()))
        assert client.link(node) == expected
        assert client.link(9_999_999) is None  # 404 -> None

    def test_scores_route(self, harness, client):
        # Not every linked node appears in the *final* round's score
        # table (earlier-round matches drop out of later candidate
        # sets), so scan for one that does.
        scores = next(
            s
            for node in harness.service.engine.links
            if (s := client.scores(node))
        )
        assert scores == sorted(
            scores, key=lambda r: (-r[1], repr(r[0]))
        )
        response = client.request("GET", "/scores/9999999")
        assert response.status == 404

    def test_string_and_int_tokens_are_distinct(self, harness, client):
        # Pick a linked *int* node; the JSON-quoted token of the same
        # digits must address the (absent) string id, not the int.
        node = next(iter(harness.service.engine.links))
        assert client.request("GET", f"/links/{node}").status == 200
        assert (
            client.request("GET", f"/links/%22{node}%22").status == 404
        )

    def test_unknown_route_and_method(self, client):
        assert client.request("GET", "/nope").status == 404
        assert client.request("PUT", "/links").status == 405

    def test_bad_delta_payloads_are_400(self, client):
        assert (
            client.request("POST", "/delta", body=b"not json").status
            == 400
        )
        assert (
            client.request(
                "POST", "/delta", body=b'{"bogus": []}'
            ).status
            == 400
        )

    def test_conflicting_delta_is_409(self, harness, client):
        u, v = next(iter(harness.service.engine.g1.edges()))
        response = client.apply(GraphDelta.build(added_edges1=[(u, v)]))
        assert response.status == 409

    def test_checkpoint_without_durability_is_409(self, client):
        assert client.request("POST", "/checkpoint").status == 409

    def test_timing_header_and_request_stats(self, harness, client):
        response = client.request("GET", "/health")
        assert float(response.headers["x-request-ms"]) >= 0
        stats = client.stats()
        assert "p50_ms" in stats["requests"]
        assert stats["requests"]["by_status"].get("200", 0) >= 1


class TestAdmissionControl:
    def test_queue_full_is_429_with_retry_after(self, workload):
        pair, seeds, deltas = workload
        service = ReconciliationService(
            make_engine(pair, seeds), max_pending=1
        )
        gate = asyncio.Event()
        service.writer_gate = gate
        h = ServerThread(service)
        h.start()
        results = {}

        def post(name, delta):
            with ServingClient("127.0.0.1", h.port) as c:
                results[name] = c.apply(delta)

        try:
            # With the writer gated: the first delta is held by the
            # writer, the second fills the queue, the third must be
            # turned away.
            threads = []
            for name, delta in (("a", deltas[0]), ("b", deltas[1])):
                t = threading.Thread(target=post, args=(name, delta))
                t.start()
                threads.append(t)
                import time

                time.sleep(0.3)
            with ServingClient("127.0.0.1", h.port) as c:
                rejected = c.apply(deltas[2])
            assert rejected.status == 429
            assert int(rejected.headers["retry-after"]) >= 1
            h.call_in_loop(gate.set)
            for t in threads:
                t.join(timeout=30)
            assert results["a"].status == 200
            assert results["b"].status == 200
        finally:
            h.call_in_loop(gate.set)
            h.stop()

    def test_graceful_stop_drains_pending_writes(self, workload):
        pair, seeds, deltas = workload
        engine = make_engine(pair, seeds)
        service = ReconciliationService(engine)
        gate = asyncio.Event()
        service.writer_gate = gate
        h = ServerThread(service)
        h.start()
        results = {}

        def post(i):
            with ServingClient("127.0.0.1", h.port) as c:
                results[i] = c.apply(deltas[i])

        threads = [
            threading.Thread(target=post, args=(i,)) for i in range(3)
        ]
        for t in threads:
            t.start()
        import time

        time.sleep(0.5)
        # Release the writer and stop in one breath: stop() must not
        # return until every admitted write is applied and answered.
        h.call_in_loop(gate.set)
        h.stop()
        for t in threads:
            t.join(timeout=30)
        assert [results[i].status for i in range(3)] == [200, 200, 200]
        assert service.batches_done == 3 or (
            # Coalescing may have merged some of the three deltas.
            service.batches_done >= 1
            and sum(results[i].json()["coalesced"] for i in range(3)) >= 3
        )
        assert engine.links == cold_links(pair, seeds, deltas[:3])


class TestKillAndResume:
    def test_kill_resume_serves_bit_identical_links(
        self, tmp_path, workload
    ):
        pair, seeds, deltas = workload
        ckpt = tmp_path / "serve.npz"

        # Phase 1: fresh durable server, stream half the deltas, stop
        # gracefully (flush + checkpoint).
        service = ReconciliationService(
            make_engine(pair, seeds),
            checkpoint_path=ckpt,
            checkpoint_every=100,  # force resume to rely on the log
        )
        with ServerThread(service) as h:
            with ServingClient("127.0.0.1", h.port) as c:
                for delta in deltas[:2]:
                    c.apply_or_raise(delta)

        # Phase 2: resume, stream the rest, then KILL mid-flight —
        # no drain, no final checkpoint, no log flush.
        resumed = ReconciliationService.resume(ckpt, checkpoint_every=100)
        assert resumed.batches_done == 2
        h2 = ServerThread(resumed)
        h2.start()
        with ServingClient("127.0.0.1", h2.port) as c:
            for delta in deltas[2:]:
                c.apply_or_raise(delta)
            served_before_kill = c.links()
        h2.kill()

        # Phase 3: resume again; the log tail replay must reconstruct
        # the exact pre-kill state, bit-identical to a cold batch run
        # on the final graphs.
        final = ReconciliationService.resume(ckpt)
        assert final.batches_done == 4
        h3 = ServerThread(final)
        h3.start()
        try:
            with ServingClient("127.0.0.1", h3.port) as c:
                served_after_resume = c.links()
        finally:
            h3.stop()
        assert served_after_resume == served_before_kill
        assert served_after_resume == cold_links(pair, seeds, deltas)

    def test_resumed_log_folds_to_served_links(self, tmp_path, workload):
        pair, seeds, deltas = workload
        ckpt = tmp_path / "serve.npz"
        service = ReconciliationService(
            make_engine(pair, seeds), checkpoint_path=ckpt
        )
        with ServerThread(service) as h:
            with ServingClient("127.0.0.1", h.port) as c:
                for delta in deltas:
                    c.apply_or_raise(delta)
        # The JSONL event log's links/retract fold equals the engine.
        assert service.store.links() == service.engine.links


class TestEmptyStart:
    def test_whole_state_arrives_as_deltas(self, workload):
        pair, seeds, deltas = workload
        engine = IncrementalReconciler(CONFIG)
        engine.start(Graph(), Graph(), {})
        service = ReconciliationService(engine)
        bootstrap = GraphDelta.build(
            added_edges1=sorted(pair.g1.edges()),
            added_edges2=sorted(pair.g2.edges()),
            added_nodes1=sorted(pair.g1.nodes()),
            added_nodes2=sorted(pair.g2.nodes()),
            added_seeds=sorted(seeds.items()),
        )
        with ServerThread(service) as h:
            with ServingClient("127.0.0.1", h.port) as c:
                c.apply_or_raise(bootstrap)
                for delta in deltas:
                    c.apply_or_raise(delta)
                served = c.links()
        assert served == cold_links(pair, seeds, deltas)
