"""Unit tests for the log-shipping primitives: the complete-lines-only
cursor and the gap/reorder-checked replication stream, driven with
plain files (no engine, no server)."""

import json

import pytest

from repro.errors import ReproError
from repro.serving.replication import DeltaLogCursor, ReplicationStream


def append(path, *events, newline=True):
    """Append JSONL *events*; the last one optionally mid-write."""
    with open(path, "a", encoding="utf-8") as fh:
        for index, event in enumerate(events):
            line = json.dumps(event)
            if not newline and index == len(events) - 1:
                # Simulate a record caught mid-write: no newline yet.
                fh.write(line[: max(1, len(line) // 2)])
            else:
                fh.write(line + "\n")


def delta_event(batch, *, ts=None, payload=None):
    event = {
        "type": "delta",
        "batch": batch,
        "payload": {"added_edges1": [[batch, batch + 1]]}
        if payload is None
        else payload,
    }
    if ts is not None:
        event["ts"] = ts
    return event


class TestDeltaLogCursor:
    def test_missing_file_reports_nothing(self, tmp_path):
        cursor = DeltaLogCursor(tmp_path / "absent.jsonl")
        assert cursor.poll() == []
        assert cursor.offset == 0

    def test_consumes_complete_lines_incrementally(self, tmp_path):
        log = tmp_path / "log.jsonl"
        append(log, {"a": 1}, {"b": 2})
        cursor = DeltaLogCursor(log)
        assert cursor.poll() == [{"a": 1}, {"b": 2}]
        assert cursor.poll() == []  # nothing new
        append(log, {"c": 3})
        assert cursor.poll() == [{"c": 3}]

    def test_parks_on_partial_trailing_line(self, tmp_path):
        log = tmp_path / "log.jsonl"
        append(log, {"a": 1}, {"b": 2}, newline=False)
        cursor = DeltaLogCursor(log)
        # Only the complete first record is consumed; the half-written
        # second record is invisible until its newline lands.
        assert cursor.poll() == [{"a": 1}]
        offset_parked = cursor.offset
        assert cursor.poll() == []
        assert cursor.offset == offset_parked
        # Finish the record (rewrite the file's tail as the writer
        # would: complete the line).
        with open(log, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"a": 1}) + "\n")
            fh.write(json.dumps({"b": 2}) + "\n")
        assert cursor.poll() == [{"b": 2}]

    def test_blank_lines_are_skipped(self, tmp_path):
        log = tmp_path / "log.jsonl"
        log.write_text('{"a": 1}\n\n{"b": 2}\n')
        assert DeltaLogCursor(log).poll() == [{"a": 1}, {"b": 2}]

    def test_shrunk_file_is_refused(self, tmp_path):
        log = tmp_path / "log.jsonl"
        append(log, {"a": 1}, {"b": 2})
        cursor = DeltaLogCursor(log)
        cursor.poll()
        log.write_text('{"a": 1}\n')
        with pytest.raises(ReproError, match="shrank"):
            cursor.poll()

    def test_disappeared_file_after_consumption_is_refused(
        self, tmp_path
    ):
        log = tmp_path / "log.jsonl"
        append(log, {"a": 1})
        cursor = DeltaLogCursor(log)
        cursor.poll()
        log.unlink()
        with pytest.raises(ReproError, match="disappeared"):
            cursor.poll()

    def test_corrupt_complete_line_is_refused(self, tmp_path):
        log = tmp_path / "log.jsonl"
        log.write_text("not json at all\n")
        with pytest.raises(ReproError, match="not valid JSON"):
            DeltaLogCursor(log).poll()

    def test_non_object_line_is_refused(self, tmp_path):
        log = tmp_path / "log.jsonl"
        log.write_text("[1, 2, 3]\n")
        with pytest.raises(ReproError, match="JSON object"):
            DeltaLogCursor(log).poll()


class TestReplicationStream:
    def test_negative_start_after_refused(self, tmp_path):
        with pytest.raises(ReproError, match="start_after"):
            ReplicationStream(tmp_path / "log.jsonl", start_after=-1)

    def test_yields_sequenced_records_skipping_fold_events(
        self, tmp_path
    ):
        log = tmp_path / "log.jsonl"
        append(
            log,
            {"type": "seeds", "links": {}},
            {"type": "links", "round": 0, "links": {}},
            delta_event(1, ts=123.5),
            {"type": "retract", "nodes": [7]},
            delta_event(2),
        )
        stream = ReplicationStream(log)
        records = stream.poll()
        assert [r.batch for r in records] == [1, 2]
        assert records[0].ts == 123.5
        assert records[1].ts is None
        assert records[0].payload == {"added_edges1": [[1, 2]]}
        assert stream.last_seen_batch == 2

    def test_skips_batches_absorbed_by_the_checkpoint(self, tmp_path):
        log = tmp_path / "log.jsonl"
        append(log, *[delta_event(b) for b in (1, 2, 3, 4)])
        stream = ReplicationStream(log, start_after=2)
        assert [r.batch for r in stream.poll()] == [3, 4]
        assert stream.last_seen_batch == 4

    def test_sequence_gap_is_refused(self, tmp_path):
        log = tmp_path / "log.jsonl"
        append(log, delta_event(1), delta_event(3))
        with pytest.raises(ReproError, match="sequence gap"):
            ReplicationStream(log).poll()

    def test_gap_right_after_the_attach_point_is_refused(self, tmp_path):
        log = tmp_path / "log.jsonl"
        append(log, delta_event(5))
        with pytest.raises(ReproError, match="expected delta batch 3"):
            ReplicationStream(log, start_after=2).poll()

    def test_reordered_records_are_refused(self, tmp_path):
        log = tmp_path / "log.jsonl"
        append(log, delta_event(2), delta_event(1))
        stream = ReplicationStream(log, start_after=5)
        # Even below the attach point, file order must be strict.
        with pytest.raises(ReproError, match="reordered"):
            stream.poll()

    def test_duplicate_batch_is_a_reorder(self, tmp_path):
        log = tmp_path / "log.jsonl"
        append(log, delta_event(1), delta_event(1))
        with pytest.raises(ReproError, match="reordered"):
            ReplicationStream(log).poll()

    def test_reorder_detected_across_polls(self, tmp_path):
        log = tmp_path / "log.jsonl"
        append(log, delta_event(1))
        stream = ReplicationStream(log)
        assert [r.batch for r in stream.poll()] == [1]
        append(log, delta_event(1))
        with pytest.raises(ReproError, match="reordered"):
            stream.poll()

    def test_non_integer_batch_is_refused(self, tmp_path):
        log = tmp_path / "log.jsonl"
        for bogus in ("2", None, True):
            log.write_text(
                json.dumps(
                    {"type": "delta", "batch": bogus, "payload": {}}
                )
                + "\n"
            )
            with pytest.raises(ReproError, match="non-integer batch"):
                ReplicationStream(log).poll()

    def test_missing_payload_is_refused(self, tmp_path):
        log = tmp_path / "log.jsonl"
        append(log, {"type": "delta", "batch": 1})
        with pytest.raises(ReproError, match="no payload"):
            ReplicationStream(log).poll()

    def test_partial_tail_does_not_advance_the_sequence(self, tmp_path):
        log = tmp_path / "log.jsonl"
        append(log, delta_event(1), delta_event(2), newline=False)
        stream = ReplicationStream(log)
        assert [r.batch for r in stream.poll()] == [1]
        # Complete record 2 exactly where the partial write stopped.
        full = json.dumps(delta_event(2))
        written = len(full) // 2 if len(full) // 2 >= 1 else 1
        with open(log, "a", encoding="utf-8") as fh:
            fh.write(full[written:] + "\n")
        assert [r.batch for r in stream.poll()] == [2]
