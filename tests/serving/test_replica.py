"""End-to-end replica tests: bootstrap from a primary's checkpoint and
log, serve bit-identical reads over HTTP at explicit versions, honor
ETag/If-None-Match, refuse writes, and report replication lag."""

import asyncio
import time

import pytest

from repro.errors import ReproError
from repro.incremental.delta import GraphDelta
from repro.serving import (
    ReadOnlyReplica,
    ReconciliationService,
    ReplicaService,
    ServerThread,
    ServingClient,
)

from serving_helpers import cold_links, make_engine


def wait_caught_up(service, batches, timeout=30.0):
    deadline = time.monotonic() + timeout
    while service.batches_done < batches or service.lag_batches:
        if service.replication_error is not None:
            raise AssertionError(
                f"replication failed: {service.replication_error}"
            )
        if time.monotonic() > deadline:
            raise AssertionError(
                f"replica stuck at batch {service.batches_done}, "
                f"wanted {batches}"
            )
        time.sleep(0.01)


@pytest.fixture
def primary(tmp_path, workload):
    """A durable primary with all four deltas applied over HTTP."""
    pair, seeds, deltas = workload
    ckpt = tmp_path / "primary.npz"
    service = ReconciliationService(
        make_engine(pair, seeds),
        checkpoint_path=ckpt,
        checkpoint_every=100,  # keep every delta in the log tail
    )
    h = ServerThread(service)
    h.start()
    with ServingClient("127.0.0.1", h.port) as c:
        for delta in deltas:
            c.apply_or_raise(delta)
    yield h, ckpt
    h.stop()


@pytest.fixture
def replica(primary):
    """A running replica following the primary's log, caught up."""
    _h, ckpt = primary
    service = ReplicaService.follow(
        str(ckpt) + ".jsonl", follow_interval=0.01
    )
    h = ServerThread(service)
    h.start()
    wait_caught_up(service, batches=4)
    yield h
    h.stop()


class TestReplicaReads:
    def test_links_bit_identical_to_primary_and_cold_run(
        self, workload, primary, replica
    ):
        pair, seeds, deltas = workload
        h, _ckpt = primary
        with ServingClient("127.0.0.1", replica.port) as c:
            served = c.links()
        assert served == h.service.engine.links
        assert served == cold_links(pair, seeds, deltas)

    def test_versions_agree_with_the_primary(self, primary, replica):
        h, _ckpt = primary
        with ServingClient("127.0.0.1", h.port) as c:
            primary_version, primary_links = c.links_versioned()
        with ServingClient("127.0.0.1", replica.port) as c:
            replica_version, replica_links = c.links_versioned()
        assert primary_version == replica_version == 4
        assert replica_links == primary_links

    def test_single_link_and_scores_match_primary(
        self, primary, replica
    ):
        h, _ckpt = primary
        nodes = sorted(h.service.engine.links, key=repr)[:5]
        with ServingClient("127.0.0.1", h.port) as pc, ServingClient(
            "127.0.0.1", replica.port
        ) as rc:
            for node in nodes:
                assert rc.link(node) == pc.link(node)
                assert rc.scores(node) == pc.scores(node)

    def test_health_reports_replica_role_and_lag(self, replica):
        with ServingClient("127.0.0.1", replica.port) as c:
            doc = c.health()
        assert doc["role"] == "replica"
        assert doc["status"] == "ok"
        replication = doc["replication"]
        assert replication["lag_batches"] == 0
        assert replication["lag_seconds"] == 0.0
        assert replication["last_seen_batch"] == 4
        assert replication["log_offset"] > 0

    def test_stats_carry_the_replication_section(self, replica):
        with ServingClient("127.0.0.1", replica.port) as c:
            stats = c.stats()
        assert stats["role"] == "replica"
        assert stats["replication"]["lag_batches"] == 0
        assert stats["applied_batches"] == 4


class TestConditionalReads:
    def test_etag_and_304_on_version_stable_reads(
        self, primary, replica
    ):
        h, _ckpt = primary
        node = next(iter(h.service.engine.links))
        for harness in (h, replica):
            with ServingClient("127.0.0.1", harness.port) as c:
                for path in ("/links", f"/links/{node}", f"/scores/{node}"):
                    first = c.request("GET", path)
                    assert first.status == 200
                    assert first.etag == '"v4"'
                    assert first.version == 4
                    again = c.get_conditional(path, first.etag)
                    assert again.status == 304
                    assert again.body == b""
                    assert again.version == 4

    def test_stale_etag_gets_a_fresh_body(self, primary, replica):
        h, _ckpt = primary
        with ServingClient("127.0.0.1", replica.port) as c:
            fresh = c.get_conditional("/links", '"v3"')
        assert fresh.status == 200
        assert fresh.etag == '"v4"'

    def test_if_none_match_star_matches(self, replica):
        with ServingClient("127.0.0.1", replica.port) as c:
            assert c.get_conditional("/links", "*").status == 304

    def test_every_response_names_its_version(self, replica):
        with ServingClient("127.0.0.1", replica.port) as c:
            for path in ("/health", "/stats", "/links"):
                assert c.request("GET", path).version == 4

    def test_version_advances_with_writes_on_the_primary(
        self, workload, tmp_path
    ):
        pair, seeds, deltas = workload
        ckpt = tmp_path / "p.npz"
        service = ReconciliationService(
            make_engine(pair, seeds), checkpoint_path=ckpt
        )
        with ServerThread(service) as h:
            with ServingClient("127.0.0.1", h.port) as c:
                etags = []
                for delta in deltas[:2]:
                    c.apply_or_raise(delta)
                    response = c.request("GET", "/links")
                    etags.append(response.etag)
                    # The previous version's ETag no longer matches.
                    if len(etags) > 1:
                        stale = c.get_conditional("/links", etags[-2])
                        assert stale.status == 200
                assert etags == ['"v1"', '"v2"']


class TestReplicaWritesRefused:
    def test_post_delta_is_403(self, replica):
        with ServingClient("127.0.0.1", replica.port) as c:
            response = c.apply(GraphDelta.build(added_edges1=[(0, 1)]))
        assert response.status == 403
        assert "read replica" in response.json()["message"]

    def test_post_checkpoint_is_409(self, replica):
        with ServingClient("127.0.0.1", replica.port) as c:
            assert c.request("POST", "/checkpoint").status == 409

    def test_submit_raises_read_only(self, primary):
        _h, ckpt = primary
        service = ReplicaService.follow(str(ckpt) + ".jsonl")

        async def drive():
            await service.start()
            try:
                with pytest.raises(ReadOnlyReplica):
                    await service.submit(
                        GraphDelta.build(added_edges1=[(0, 1)])
                    )
            finally:
                await service.close()

        asyncio.run(drive())


class TestReplicaFollowsLiveWrites:
    def test_replica_tracks_deltas_applied_after_attach(
        self, workload, tmp_path
    ):
        pair, seeds, deltas = workload
        ckpt = tmp_path / "p.npz"
        service = ReconciliationService(
            make_engine(pair, seeds),
            checkpoint_path=ckpt,
            checkpoint_every=100,
        )
        with ServerThread(service) as h:
            with ServingClient("127.0.0.1", h.port) as c:
                c.apply_or_raise(deltas[0])
            rep = ReplicaService.follow(
                str(ckpt) + ".jsonl", follow_interval=0.01
            )
            rh = ServerThread(rep)
            rh.start()
            try:
                wait_caught_up(rep, batches=1)
                # New writes land on the primary while the replica
                # serves; it must converge without a restart.
                with ServingClient("127.0.0.1", h.port) as c:
                    for delta in deltas[1:]:
                        c.apply_or_raise(delta)
                wait_caught_up(rep, batches=len(deltas))
                with ServingClient("127.0.0.1", rh.port) as c:
                    version, served = c.links_versioned()
            finally:
                rh.stop()
        assert version == len(deltas)
        assert served == cold_links(pair, seeds, deltas)


class TestLagReadiness:
    def test_health_degrades_to_503_beyond_max_lag(
        self, workload, tmp_path
    ):
        pair, seeds, deltas = workload
        ckpt = tmp_path / "p.npz"
        service = ReconciliationService(
            make_engine(pair, seeds),
            checkpoint_path=ckpt,
            checkpoint_every=100,
        )
        with ServerThread(service) as h:
            rep = ReplicaService.follow(
                str(ckpt) + ".jsonl",
                follow_interval=0.01,
                max_lag_batches=1,
            )
            # Gate the follower shut *before* serving so nothing is
            # applied past the initial (empty-log) catch-up.
            gate = asyncio.Event()
            rep.follower_gate = gate
            rh = ServerThread(rep)
            rh.start()
            try:
                with ServingClient("127.0.0.1", h.port) as c:
                    for delta in deltas[:3]:
                        c.apply_or_raise(delta)
                # Let the replica *see* the primary's head without
                # applying: poll the stream on the server's loop (the
                # follower is gated, so nothing else touches it).
                done = asyncio.Event()

                def observe():
                    rep._pending.extend(rep.stream.poll())
                    done.set()

                rh.call_in_loop(observe)
                deadline = time.monotonic() + 10
                while not done.is_set():
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
                assert rep.lag_batches == 3
                with ServingClient("127.0.0.1", rh.port) as c:
                    response = c.request("GET", "/health")
                    assert response.status == 503
                    doc = response.json()
                    assert doc["status"] == "lagging"
                    assert doc["replication"]["lag_batches"] == 3
                    assert doc["replication"]["max_lag_batches"] == 1
                    # lag_seconds is measured from the oldest pending
                    # record's primary-side timestamp.
                    assert doc["replication"]["lag_seconds"] >= 0
                    # Reads still serve the last consistent version.
                    assert c.request("GET", "/links").status == 200
                # Release the follower: lag drains, health recovers.
                rh.call_in_loop(gate.set)
                wait_caught_up(rep, batches=3)
                with ServingClient("127.0.0.1", rh.port) as c:
                    assert c.request("GET", "/health").status == 200
            finally:
                rh.call_in_loop(gate.set)
                rh.stop()


class TestBootstrapValidation:
    def test_explicit_missing_checkpoint_is_refused(self, tmp_path):
        log = tmp_path / "p.npz.jsonl"
        log.write_text("")
        with pytest.raises(ReproError, match="does not exist"):
            ReplicaService.follow(
                log, checkpoint_path=tmp_path / "nope.npz"
            )

    def test_missing_log_is_refused(self, tmp_path):
        with pytest.raises(ReproError, match="does not exist"):
            ReplicaService.follow(tmp_path / "absent.jsonl")

    def test_nonempty_bootstrap_without_checkpoint_is_refused(
        self, workload, tmp_path
    ):
        pair, seeds, _deltas = workload
        # A primary started on non-empty graphs logs its bootstrap
        # links; with the checkpoint gone, deltas alone cannot rebuild
        # that state and the attach must be refused.
        log = tmp_path / "solo.jsonl"
        service = ReconciliationService(
            make_engine(pair, seeds),
            checkpoint_path=tmp_path / "p.npz",
            log_path=log,
        )

        async def drive():
            await service.start()
            await service.close()

        asyncio.run(drive())
        with pytest.raises(ReproError, match="non-empty starting state"):
            ReplicaService.follow(log)

    def test_constructor_validates_knobs(self, workload):
        pair, seeds, _deltas = workload
        engine = make_engine(pair, seeds)
        with pytest.raises(ReproError, match="follow_interval"):
            ReplicaService(
                engine, log_path="x.jsonl", follow_interval=0
            )
        with pytest.raises(ReproError, match="max_lag_batches"):
            ReplicaService(
                engine, log_path="x.jsonl", max_lag_batches=0
            )

    def test_checkpoint_resume_attaches_past_absorbed_batches(
        self, workload, tmp_path
    ):
        pair, seeds, deltas = workload
        ckpt = tmp_path / "p.npz"
        # checkpoint_every=1: the final checkpoint absorbs everything,
        # so the replica bootstrap applies zero logged batches but
        # still reports the primary's version.
        service = ReconciliationService(
            make_engine(pair, seeds),
            checkpoint_path=ckpt,
            checkpoint_every=1,
        )

        async def drive():
            await service.start()
            for delta in deltas:
                await service.submit(delta)
            await service.close()

        asyncio.run(drive())
        rep = ReplicaService.follow(str(ckpt) + ".jsonl")
        assert rep.batches_done == len(deltas)
        assert rep.version == len(deltas)

        async def catch_up():
            await rep.start()
            await rep.close()

        asyncio.run(catch_up())
        assert rep.engine.links == cold_links(pair, seeds, deltas)
