"""Fault injection for replication: killed replicas, truncated and
gapped logs, and a primary crash mid-stream.  In every scenario the
replica either serves links bit-identical to a cold batch run or
refuses loudly — never a silently divergent state."""

import asyncio
import json
import time

import pytest

from repro.errors import ReproError
from repro.serving import (
    ReconciliationService,
    ReplicaService,
    ServerThread,
    ServingClient,
)

from serving_helpers import cold_links, make_engine
from test_replica import wait_caught_up


def build_primary_log(tmp_path, workload, *, batches=None, name="p.npz"):
    """Run a durable primary over *batches* deltas; return its paths.

    The primary is *aborted*, not closed: a graceful close writes a
    final checkpoint that absorbs the whole history, and these
    scenarios need replicas that actually replay the log tail.
    """
    pair, seeds, deltas = workload
    use = deltas if batches is None else deltas[:batches]
    ckpt = tmp_path / name
    service = ReconciliationService(
        make_engine(pair, seeds),
        checkpoint_path=ckpt,
        checkpoint_every=100,  # keep the whole history in the log
    )

    async def drive():
        await service.start()
        for delta in use:
            await service.submit(delta)
        service.abort()

    asyncio.run(drive())
    return ckpt, ckpt.parent / (name + ".jsonl")


def clone_primary(tmp_path, ckpt, log, *, name="clone.npz"):
    """Copy checkpoint + log so a scenario can corrupt its own pair."""
    ckpt2 = tmp_path / name
    log2 = tmp_path / (name + ".jsonl")
    ckpt2.write_bytes(ckpt.read_bytes())
    log2.write_bytes(log.read_bytes())
    return ckpt2, log2


def delta_line_spans(log):
    """``[(batch, start_offset, end_offset), ...]`` of delta lines."""
    spans = []
    offset = 0
    with open(log, "rb") as fh:
        for raw in fh:
            event = json.loads(raw)
            if event.get("type") == "delta":
                spans.append(
                    (event["batch"], offset, offset + len(raw))
                )
            offset += len(raw)
    return spans


def drain(service, batches):
    """Start a replica service, wait until caught up, close it."""

    async def run():
        await service.start()
        while service.batches_done < batches or service.lag_batches:
            assert service.replication_error is None, (
                service.replication_error
            )
            await asyncio.sleep(0.005)
        await service.close()

    asyncio.run(run())


class TestReplicaKilledMidReplay:
    def test_rebootstrap_after_partial_replay_is_bit_identical(
        self, tmp_path, workload
    ):
        pair, seeds, deltas = workload
        ckpt, log = build_primary_log(tmp_path, workload)
        # First replica dies (kill -9: nothing flushed — it has
        # nothing *to* flush) after applying only half the history.
        casualty = ReplicaService.follow(log)
        applied = casualty.step(limit=2)
        assert applied == 2 and casualty.batches_done == 2
        casualty.abort()
        # Re-bootstrap from scratch: all replica state is derived, so
        # the replacement converges to the exact same answer.
        replacement = ReplicaService.follow(log)
        drain(replacement, batches=len(deltas))
        assert replacement.engine.links == cold_links(
            pair, seeds, deltas
        )

    def test_http_kill_then_rebootstrap(self, tmp_path, workload):
        pair, seeds, deltas = workload
        _ckpt, log = build_primary_log(tmp_path, workload)
        first = ServerThread(
            ReplicaService.follow(log, follow_interval=0.01)
        )
        first.start()
        wait_caught_up(first.service, batches=len(deltas))
        first.kill()  # abrupt: no drain, no close handshake
        second = ServerThread(
            ReplicaService.follow(log, follow_interval=0.01)
        )
        second.start()
        try:
            wait_caught_up(second.service, batches=len(deltas))
            with ServingClient("127.0.0.1", second.port) as c:
                served = c.links()
        finally:
            second.stop()
        assert served == cold_links(pair, seeds, deltas)


class TestTruncatedLog:
    def test_replica_parks_at_last_complete_record(
        self, tmp_path, workload
    ):
        pair, seeds, deltas = workload
        ckpt, log = build_primary_log(tmp_path, workload)
        ckpt2, log2 = clone_primary(tmp_path, ckpt, log)
        spans = delta_line_spans(log2)
        assert [batch for batch, _s, _e in spans] == [1, 2, 3, 4]
        _batch, start, end = spans[-1]
        # Cut batch 4's record in half: a replica must stop *cleanly*
        # after batch 3, not crash and not apply half a delta.
        full = log2.read_bytes()
        cut = start + (end - start) // 2
        log2.write_bytes(full[:cut])
        replica = ReplicaService.follow(log2)
        drain(replica, batches=3)
        assert replica.batches_done == 3
        assert replica.replication_error is None
        # Version 3 is a real, consistent state: the cold run on the
        # first three deltas.
        assert replica.engine.links == cold_links(
            pair, seeds, deltas[:3]
        )
        # The writer finishes the record: the replica picks it up from
        # the parked cursor and converges.
        log2.write_bytes(full)
        replica.step()
        assert replica.batches_done == 4
        assert replica.engine.links == cold_links(pair, seeds, deltas)

    def test_shrunk_log_is_refused(self, tmp_path, workload):
        _pair, _seeds, deltas = workload
        ckpt, log = build_primary_log(tmp_path, workload)
        ckpt2, log2 = clone_primary(tmp_path, ckpt, log)
        replica = ReplicaService.follow(log2)
        drain(replica, batches=len(deltas))
        # A primary restarted *fresh* (not --resume) truncates its log;
        # the replica must refuse rather than reread a different
        # history under the same versions.
        log2.write_bytes(log2.read_bytes()[:100])
        with pytest.raises(ReproError, match="shrank"):
            replica.step()


class TestSequenceGap:
    def test_gapped_log_refuses_at_bootstrap(self, tmp_path, workload):
        ckpt, log = build_primary_log(tmp_path, workload)
        ckpt2, log2 = clone_primary(tmp_path, ckpt, log)
        spans = delta_line_spans(log2)
        _batch, start, end = spans[2]  # drop delta batch 3 entirely
        full = log2.read_bytes()
        log2.write_bytes(full[:start] + full[end:])
        replica = ReplicaService.follow(log2)

        async def boot():
            await replica.start()

        with pytest.raises(ReproError, match="sequence gap"):
            asyncio.run(boot())

    def test_live_gap_stops_the_follower_and_reddens_health(
        self, tmp_path, workload
    ):
        pair, seeds, deltas = workload
        _ckpt, log = build_primary_log(tmp_path, workload)
        h = ServerThread(ReplicaService.follow(log, follow_interval=0.01))
        h.start()
        service = h.service
        try:
            wait_caught_up(service, batches=len(deltas))
            # Corrupt the *live* feed: a delta that skips a sequence
            # number (a lost record on the primary side).
            with open(log, "a", encoding="utf-8") as fh:
                fh.write(
                    json.dumps(
                        {
                            "type": "delta",
                            "batch": len(deltas) + 2,
                            "payload": {},
                        }
                    )
                    + "\n"
                )
            deadline = time.monotonic() + 10
            while service.replication_error is None:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            assert "gap" in str(service.replication_error)
            with ServingClient("127.0.0.1", h.port) as c:
                health = c.request("GET", "/health")
                assert health.status == 503
                doc = health.json()
                assert doc["status"] == "replication-failed"
                assert "gap" in doc["replication"]["error"]
                # The last consistent version is still served, and it
                # is still the exact cold-run answer.
                links = c.links()
            assert links == cold_links(pair, seeds, deltas)
        finally:
            h.stop()


class TestPrimaryCrashWhileFollowing:
    def test_primary_kill_resume_replica_converges(
        self, tmp_path, workload
    ):
        pair, seeds, deltas = workload
        ckpt = tmp_path / "p.npz"
        log = tmp_path / "p.npz.jsonl"
        # Phase 1: primary applies half the stream, then dies hard.
        service = ReconciliationService(
            make_engine(pair, seeds),
            checkpoint_path=ckpt,
            checkpoint_every=100,
        )
        h1 = ServerThread(service)
        h1.start()
        with ServingClient("127.0.0.1", h1.port) as c:
            for delta in deltas[:2]:
                c.apply_or_raise(delta)
        h1.kill()
        # The replica attaches against the dead primary's log.
        replica = ServerThread(
            ReplicaService.follow(log, follow_interval=0.01)
        )
        replica.start()
        try:
            wait_caught_up(replica.service, batches=2)
            # Phase 2: the primary resumes (log-tail replay) and the
            # remaining deltas stream through it.
            resumed = ReconciliationService.resume(
                ckpt, checkpoint_every=100
            )
            assert resumed.batches_done == 2
            h2 = ServerThread(resumed)
            h2.start()
            with ServingClient("127.0.0.1", h2.port) as c:
                for delta in deltas[2:]:
                    c.apply_or_raise(delta)
                primary_links = c.links()
            h2.stop()
            # The replica follows straight across the crash: same log,
            # same sequence, no re-bootstrap needed.
            wait_caught_up(replica.service, batches=len(deltas))
            with ServingClient("127.0.0.1", replica.port) as c:
                version, served = c.links_versioned()
        finally:
            replica.stop()
        assert version == len(deltas)
        assert served == primary_links
        assert served == cold_links(pair, seeds, deltas)
