"""Unit tests for ReconciliationService: coalescing, admission,
validation, read caches, durability, and resume."""

import asyncio
import json

import pytest

from repro.errors import ReproError
from repro.incremental.delta import DeltaError, GraphDelta
from repro.serving.service import (
    AdmissionError,
    ReconciliationService,
    ServiceClosing,
    _percentile,
    parse_json_delta,
)

from serving_helpers import make_engine


class TestCoalescing:
    def test_disjoint_deltas_merge(self):
        a = GraphDelta.build(added_edges1=[(1, 2)], added_seeds=[(1, 1)])
        b = GraphDelta.build(added_edges1=[(3, 4)], added_edges2=[(5, 6)])
        merged = ReconciliationService._merge_deltas([a, b])
        assert set(merged.added_edges1) == {(1, 2), (3, 4)}
        assert merged.added_edges2 == ((5, 6),)
        assert merged.added_seeds == ((1, 1),)

    def test_overlapping_edges_split_batches(self):
        class Item:
            def __init__(self, delta):
                self.delta = delta

        a = Item(GraphDelta.build(added_edges1=[(1, 2)]))
        b = Item(GraphDelta.build(added_edges1=[(3, 4)]))
        # Removes an edge the first batch adds — order matters, so it
        # must start a new batch.
        c = Item(GraphDelta.build(removed_edges1=[(2, 1)]))
        batches = ReconciliationService._coalesce([a, b, c])
        assert [len(batch) for batch in batches] == [2, 1]

    def test_conflicting_seed_sources_split_batches(self):
        class Item:
            def __init__(self, delta):
                self.delta = delta

        a = Item(GraphDelta.build(added_seeds=[(1, 10)]))
        b = Item(GraphDelta.build(added_seeds=[(1, 11)]))
        batches = ReconciliationService._coalesce([a, b])
        assert [len(batch) for batch in batches] == [1, 1]


class TestSubmitPath:
    def test_coalesced_applies_match_sequential(self, workload):
        pair, seeds, deltas = workload

        async def go():
            engine = make_engine(pair, seeds)
            service = ReconciliationService(engine)
            await service.start()
            gate = asyncio.Event()
            service.writer_gate = gate
            tasks = [
                asyncio.ensure_future(service.submit(delta))
                for delta in deltas
            ]
            await asyncio.sleep(0.05)
            gate.set()
            summaries = await asyncio.gather(*tasks)
            await service.close()
            return engine.links, summaries

        links, summaries = asyncio.run(go())

        async def sequential():
            engine = make_engine(pair, seeds)
            service = ReconciliationService(engine)
            await service.start()
            for delta in deltas:
                await service.submit(delta)
            await service.close()
            return engine.links

        assert links == asyncio.run(sequential())
        # The gated run saw all four deltas queued at once; at least
        # one apply must have coalesced more than one of them.
        assert max(s["coalesced"] for s in summaries) > 1

    def test_queue_full_raises_admission_error(self, workload):
        pair, seeds, deltas = workload

        async def go():
            engine = make_engine(pair, seeds)
            service = ReconciliationService(engine, max_pending=1)
            await service.start()
            gate = asyncio.Event()
            service.writer_gate = gate
            first = asyncio.ensure_future(service.submit(deltas[0]))
            await asyncio.sleep(0.05)  # writer holds deltas[0] at gate
            second = asyncio.ensure_future(service.submit(deltas[1]))
            await asyncio.sleep(0.05)
            with pytest.raises(AdmissionError) as excinfo:
                await service.submit(deltas[2])
            assert excinfo.value.retry_after >= 1
            assert service.rejected_full == 1
            gate.set()
            await first
            await second
            await service.close()

        asyncio.run(go())

    def test_closing_rejects_submissions(self, workload):
        pair, seeds, deltas = workload

        async def go():
            engine = make_engine(pair, seeds)
            service = ReconciliationService(engine)
            await service.start()
            await service.close()
            with pytest.raises(ServiceClosing):
                await service.submit(deltas[0])
            assert service.rejected_closing == 1

        asyncio.run(go())

    def test_invalid_delta_rejected_without_mutation(self, workload):
        pair, seeds, deltas = workload

        async def go():
            engine = make_engine(pair, seeds)
            service = ReconciliationService(engine)
            await service.start()
            links_before = dict(engine.links)
            edges_before = engine.g1.num_edges
            existing = next(iter(engine.g1.edges()))
            bad = GraphDelta.build(
                added_edges1=[(99990, 99991), existing]
            )
            with pytest.raises(DeltaError):
                await service.submit(bad)
            # Rejected before any mutation: the valid half of the
            # delta must not have leaked into the graphs.
            assert engine.g1.num_edges == edges_before
            assert engine.links == links_before
            # And the engine still accepts good deltas afterwards.
            summary = await service.submit(deltas[0])
            assert summary["batch"] == 1
            await service.close()

        asyncio.run(go())

    def test_seed_remap_and_duplicate_target_rejected(self, workload):
        pair, seeds, _deltas = workload

        async def go():
            engine = make_engine(pair, seeds)
            service = ReconciliationService(engine)
            await service.start()
            v1, v2 = next(iter(engine.seeds.items()))
            other_target = next(
                t for t in engine.seeds.values() if t != v2
            )
            with pytest.raises(DeltaError, match="remapped"):
                await service.submit(
                    GraphDelta.build(added_seeds=[(v1, other_target)])
                )
            unseeded = next(
                u for u in engine.g1.nodes() if u not in engine.seeds
            )
            with pytest.raises(DeltaError, match="one-to-one"):
                await service.submit(
                    GraphDelta.build(added_seeds=[(unseeded, v2)])
                )
            # Re-confirming an existing seed is fine.
            summary = await service.submit(
                GraphDelta.build(added_seeds=[(v1, v2)])
            )
            assert summary["batch"] == 1
            await service.close()

        asyncio.run(go())

    def test_empty_delta_is_a_noop_batch(self, workload):
        pair, seeds, _deltas = workload

        async def go():
            engine = make_engine(pair, seeds)
            service = ReconciliationService(engine)
            await service.start()
            summary = await service.submit(GraphDelta.build())
            await service.close()
            return summary

        assert asyncio.run(go())["mode"] == "noop"


class TestReadCache:
    def test_snapshot_cached_until_apply(self, workload):
        pair, seeds, deltas = workload

        async def go():
            engine = make_engine(pair, seeds)
            service = ReconciliationService(engine)
            await service.start()
            body1 = service.links_snapshot_body()
            assert service.links_snapshot_body() is body1
            token = "0"
            status1, link1 = service.link_body(token)
            assert service.link_body(token) == (status1, link1)
            await service.submit(deltas[0])
            body2 = service.links_snapshot_body()
            assert body2 is not body1
            assert json.loads(body2)["version"] == 1
            await service.close()

        asyncio.run(go())

    def test_bad_token_is_400(self, workload):
        pair, seeds, _deltas = workload

        async def go():
            engine = make_engine(pair, seeds)
            service = ReconciliationService(engine)
            status, _body = service.link_body('"unterminated')
            assert status == 400
            status, _body = service.scores_body('"unterminated')
            assert status == 400

        asyncio.run(go())


class TestDurabilityAndResume:
    def test_resume_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(ReproError, match="--resume"):
            ReconciliationService.resume(tmp_path / "absent.npz")

    def test_resume_non_serving_checkpoint_raises(
        self, tmp_path, workload
    ):
        pair, seeds, _deltas = workload
        engine = make_engine(pair, seeds)
        path = tmp_path / "plain.npz"
        engine.save_checkpoint(path)
        with pytest.raises(ReproError, match="serving"):
            ReconciliationService.resume(path)

    def test_resume_rejects_log_gap(self, tmp_path, workload):
        pair, seeds, deltas = workload
        path = tmp_path / "serve.npz"

        async def go():
            engine = make_engine(pair, seeds)
            service = ReconciliationService(engine, checkpoint_path=path)
            await service.start()
            await service.submit(deltas[0])
            await service.close()

        asyncio.run(go())
        log = tmp_path / "serve.npz.jsonl"
        with open(log, "a", encoding="utf-8") as fh:
            fh.write(
                json.dumps({"type": "delta", "batch": 7, "payload": {}})
                + "\n"
            )
        with pytest.raises(ReproError, match="batch"):
            ReconciliationService.resume(path)

    def test_checkpoint_every_bounds_log_tail(self, tmp_path, workload):
        pair, seeds, deltas = workload
        path = tmp_path / "serve.npz"

        async def go():
            engine = make_engine(pair, seeds)
            service = ReconciliationService(
                engine, checkpoint_path=path, checkpoint_every=2
            )
            await service.start()
            for delta in deltas[:3]:
                await service.submit(delta)
            # Periodic checkpoint after batch 2; batch 3 lives only in
            # the log until close() flushes a final checkpoint.
            assert service._batches_at_checkpoint >= 2
            await service.close()
            assert service._batches_at_checkpoint == 3

        asyncio.run(go())


class TestHelpers:
    def test_percentile_nearest_rank(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert _percentile(values, 0.50) == 3.0
        assert _percentile(values, 0.99) == 5.0
        assert _percentile([7.0], 0.50) == 7.0

    def test_parse_json_delta_rejects_non_json(self):
        with pytest.raises(DeltaError, match="JSON"):
            parse_json_delta(b"not json")
        with pytest.raises(DeltaError, match="unknown"):
            parse_json_delta(b'{"bogus_field": []}')
