"""Unit tests for the hand-rolled HTTP/1.1 framing layer."""

import asyncio

import pytest

from repro.serving.http import (
    HttpError,
    error_body,
    json_body,
    read_request,
    render_response,
)


def parse(raw: bytes, **kwargs):
    """Feed raw bytes through a StreamReader into read_request."""

    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, **kwargs)

    return asyncio.run(go())


class TestReadRequest:
    def test_simple_get(self):
        request = parse(b"GET /links?limit=5&x=a%20b HTTP/1.1\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/links"
        assert request.query == {"limit": "5", "x": "a b"}
        assert request.body == b""
        assert request.keep_alive

    def test_path_percent_decoding(self):
        request = parse(b'GET /links/%221%22 HTTP/1.1\r\n\r\n')
        assert request.path == '/links/"1"'

    def test_headers_lowercased_and_stripped(self):
        request = parse(
            b"GET / HTTP/1.1\r\nX-Thing:  Value \r\nHost: h\r\n\r\n"
        )
        assert request.headers["x-thing"] == "Value"
        assert request.headers["host"] == "h"

    def test_post_body_round_trips(self):
        body = b'{"added_edges1":[[1,2]]}'
        raw = (
            b"POST /delta HTTP/1.1\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        request = parse(raw)
        assert request.method == "POST"
        assert request.body == body

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_connection_close(self):
        request = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not request.keep_alive

    def test_http10_defaults_to_close(self):
        assert not parse(b"GET / HTTP/1.0\r\n\r\n").keep_alive

    def test_http10_keep_alive_opt_in(self):
        raw = b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"
        assert parse(raw).keep_alive

    @pytest.mark.parametrize(
        "raw",
        [
            b"GARBAGE\r\n\r\n",
            b"GET /x HTTP/2.0\r\n\r\n",
            b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: nan\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
        ],
    )
    def test_malformed_is_400(self, raw):
        with pytest.raises(HttpError) as excinfo:
            parse(raw)
        assert excinfo.value.status == 400

    def test_truncated_body_is_400(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"
        with pytest.raises(HttpError) as excinfo:
            parse(raw)
        assert excinfo.value.status == 400

    def test_chunked_is_501(self):
        raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
        with pytest.raises(HttpError) as excinfo:
            parse(raw)
        assert excinfo.value.status == 501

    def test_oversized_body_is_413(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n" + b"x" * 100
        with pytest.raises(HttpError) as excinfo:
            parse(raw, max_body=10)
        assert excinfo.value.status == 413

    def test_oversized_request_line_is_400(self):
        raw = b"GET /" + b"a" * 9000 + b" HTTP/1.1\r\n\r\n"
        with pytest.raises(HttpError) as excinfo:
            parse(raw)
        assert excinfo.value.status == 400


class TestRenderResponse:
    def test_status_line_and_framing(self):
        raw = render_response(200, b'{"ok":1}')
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: 8" in head
        assert b"Connection: keep-alive" in head
        assert body == b'{"ok":1}'

    def test_close_and_extra_headers(self):
        raw = render_response(
            429,
            b"{}",
            keep_alive=False,
            extra_headers={"Retry-After": "3"},
        )
        assert b"HTTP/1.1 429 Too Many Requests" in raw
        assert b"Connection: close" in raw
        assert b"Retry-After: 3" in raw

    def test_json_and_error_bodies(self):
        import json

        assert json.loads(json_body({"a": [1, "x"]})) == {"a": [1, "x"]}
        doc = json.loads(error_body(404, "no such node"))
        assert doc["status"] == 404
        assert doc["message"] == "no such node"
