"""Workload helpers shared by the serving tests (imported by name;
the test tree has no packages)."""

from __future__ import annotations

import dataclasses

from repro.core.config import MatcherConfig
from repro.core.matcher import UserMatching
from repro.incremental.delta import apply_delta_to_graphs
from repro.incremental.engine import IncrementalReconciler

CONFIG = MatcherConfig(threshold=2, iterations=1)


def make_engine(pair, seeds):
    """A started warm engine on copies of the workload graphs."""
    engine = IncrementalReconciler(CONFIG)
    engine.start(pair.g1.copy(), pair.g2.copy(), dict(seeds))
    return engine


def cold_links(pair, seeds, deltas):
    """Links of a from-scratch run on the fully-applied graphs."""
    g1, g2 = pair.g1.copy(), pair.g2.copy()
    merged = dict(seeds)
    for delta in deltas:
        apply_delta_to_graphs(g1, g2, delta)
        merged.update(delta.added_seeds)
    cold_config = dataclasses.replace(CONFIG, backend="csr")
    return UserMatching(cold_config).run(g1, g2, merged).links
