"""Unit tests for correlated community deletion, sybil attack, temporal split."""

import pytest

from repro.generators.affiliation import affiliation_graph
from repro.graphs.graph import Graph
from repro.graphs.temporal import TemporalGraph
from repro.sampling.attack import attacked_copies, inject_sybils
from repro.sampling.community import correlated_community_copies
from repro.sampling.temporal_split import split_by_parity, split_by_predicates


@pytest.fixture(scope="module")
def net():
    return affiliation_graph(150, 150, memberships_per_user=5, seed=1)


class TestCorrelatedCommunity:
    def test_all_users_in_both_copies(self, net):
        pair = correlated_community_copies(net, 0.75, seed=2)
        assert pair.g1.num_nodes == net.graph.num_nodes
        assert pair.g2.num_nodes == net.graph.num_nodes

    def test_keep_one_is_identity(self, net):
        pair = correlated_community_copies(net, 1.0, seed=2)
        assert pair.g1 == net.graph
        assert pair.g2 == net.graph

    def test_keep_zero_is_empty(self, net):
        pair = correlated_community_copies(net, 0.0, seed=2)
        assert pair.g1.num_edges == 0

    def test_copies_edges_from_fold(self, net):
        pair = correlated_community_copies(net, 0.6, seed=3)
        for u, v in pair.g1.edges():
            assert net.graph.has_edge(u, v)

    def test_copies_decorrelated(self, net):
        pair = correlated_community_copies(net, 0.5, seed=4)
        assert pair.g1 != pair.g2

    def test_reproducible(self, net):
        a = correlated_community_copies(net, 0.75, seed=5)
        b = correlated_community_copies(net, 0.75, seed=5)
        assert a.g1 == b.g1 and a.g2 == b.g2


class TestInjectSybils:
    def test_doubles_node_count(self, small_pa):
        result = inject_sybils(small_pa, 0.5, seed=1)
        assert result.graph.num_nodes == 2 * small_pa.num_nodes

    def test_victim_mapping(self, small_pa):
        result = inject_sybils(small_pa, 0.5, seed=1)
        assert len(result.victim_of) == small_pa.num_nodes
        for sybil, victim in result.victim_of.items():
            assert sybil == ("sybil", victim)

    def test_sybil_edges_subset_of_victim_neighbors(self, small_pa):
        result = inject_sybils(small_pa, 0.5, seed=2)
        for sybil, victim in list(result.victim_of.items())[:50]:
            for nbr in result.graph.neighbors(sybil):
                assert small_pa.has_edge(victim, nbr) or nbr == victim

    def test_attach_zero_gives_isolated_sybils(self, triangle):
        result = inject_sybils(triangle, 0.0, seed=1)
        for sybil in result.sybils:
            assert result.graph.degree(sybil) == 0

    def test_attach_one_clones_neighborhood(self, star):
        result = inject_sybils(star, 1.0, seed=1)
        hub_sybil = ("sybil", 0)
        assert result.graph.degree(hub_sybil) == star.degree(0)

    def test_original_untouched(self, small_pa):
        before = small_pa.copy()
        inject_sybils(small_pa, 0.5, seed=3)
        assert small_pa == before

    def test_attach_rate(self, small_pa):
        result = inject_sybils(small_pa, 0.5, seed=4)
        total_sybil_degree = sum(result.graph.degree(s) for s in result.sybils)
        expected = small_pa.num_edges  # half of 2m
        assert 0.9 * expected < total_sybil_degree < 1.1 * expected


class TestAttackedCopies:
    def test_identity_covers_sybil_twins_by_default(self, small_pa):
        pair = attacked_copies(small_pa, s=0.8, seed=5)
        assert len(pair.identity) == 2 * small_pa.num_nodes

    def test_identity_without_twins(self, small_pa):
        pair = attacked_copies(small_pa, s=0.8, link_sybil_twins=False, seed=5)
        assert len(pair.identity) == small_pa.num_nodes

    def test_copies_contain_sybils(self, small_pa):
        pair = attacked_copies(small_pa, s=0.8, seed=6)
        assert pair.g1.num_nodes == 2 * small_pa.num_nodes
        assert pair.g2.num_nodes == 2 * small_pa.num_nodes


class TestTemporalSplit:
    @pytest.fixture
    def tg(self):
        return TemporalGraph.from_events(
            [(0, 1, 0), (1, 2, 1), (0, 1, 2), (2, 3, 3), (0, 2, 0)]
        )

    def test_parity_split(self, tg):
        pair = split_by_parity(tg)
        assert pair.g1.has_edge(0, 1)  # t=0 and t=2
        assert pair.g2.has_edge(1, 2)  # t=1
        assert pair.g2.has_edge(2, 3)  # t=3

    def test_identity_on_shared_nodes(self, tg):
        pair = split_by_parity(tg)
        for v in pair.identity:
            assert pair.g1.has_node(v) and pair.g2.has_node(v)

    def test_predicates_split(self, tg):
        pair = split_by_predicates(tg, lambda t: t < 2, lambda t: t >= 2)
        assert pair.g1.has_edge(1, 2)
        assert pair.g2.has_edge(2, 3)

    def test_keep_isolated(self, tg):
        pair = split_by_predicates(
            tg,
            lambda t: t == 0,
            lambda t: t == 1,
            drop_isolated=False,
        )
        assert pair.g1.num_nodes == 4
        assert pair.g2.num_nodes == 4
