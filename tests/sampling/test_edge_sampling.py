"""Unit tests for the independent edge deletion copy model."""

import pytest

from repro.sampling.edge_sampling import (
    add_noise_edges,
    delete_vertices,
    independent_copies,
    sample_edges,
)


class TestSampleEdges:
    def test_all_nodes_preserved(self, small_pa):
        out = sample_edges(small_pa, 0.5, seed=1)
        assert out.num_nodes == small_pa.num_nodes

    def test_edges_subset_of_original(self, small_pa):
        out = sample_edges(small_pa, 0.5, seed=1)
        for u, v in out.edges():
            assert small_pa.has_edge(u, v)

    def test_s_zero_empty(self, small_pa):
        assert sample_edges(small_pa, 0.0, seed=1).num_edges == 0

    def test_s_one_identity(self, small_pa):
        assert sample_edges(small_pa, 1.0, seed=1) == small_pa

    def test_survival_rate_concentrates(self, small_pa):
        out = sample_edges(small_pa, 0.5, seed=2)
        ratio = out.num_edges / small_pa.num_edges
        assert 0.45 < ratio < 0.55

    def test_reproducible(self, small_pa):
        a = sample_edges(small_pa, 0.5, seed=3)
        b = sample_edges(small_pa, 0.5, seed=3)
        assert a == b

    def test_invalid_probability(self, small_pa):
        with pytest.raises(ValueError):
            sample_edges(small_pa, 1.5)


class TestNoiseAndVertexDeletion:
    def test_noise_edges_added(self, small_pa):
        out = add_noise_edges(small_pa, 50, seed=1)
        assert out.num_edges == small_pa.num_edges + 50

    def test_noise_edges_are_new(self, small_pa):
        out = add_noise_edges(small_pa, 50, seed=1)
        new = [(u, v) for u, v in out.edges() if not small_pa.has_edge(u, v)]
        assert len(new) == 50

    def test_noise_zero(self, small_pa):
        assert add_noise_edges(small_pa, 0, seed=1) == small_pa

    def test_noise_tiny_graph(self, triangle):
        out = add_noise_edges(triangle, 5, seed=1)
        # K3 is complete: no room for noise.
        assert out.num_edges == 3

    def test_delete_vertices_rate(self, small_pa):
        out = delete_vertices(small_pa, 0.3, seed=2)
        ratio = out.num_nodes / small_pa.num_nodes
        assert 0.6 < ratio < 0.8

    def test_delete_vertices_zero(self, small_pa):
        assert delete_vertices(small_pa, 0.0, seed=1) == small_pa

    def test_delete_vertices_edges_consistent(self, small_pa):
        out = delete_vertices(small_pa, 0.4, seed=3)
        for u, v in out.edges():
            assert out.has_node(u) and out.has_node(v)
            assert small_pa.has_edge(u, v)


class TestIndependentCopies:
    def test_identity_is_full_vertex_set(self, small_pa):
        pair = independent_copies(small_pa, 0.5, seed=1)
        assert len(pair.identity) == small_pa.num_nodes

    def test_identity_maps_to_self(self, small_pa):
        pair = independent_copies(small_pa, 0.5, seed=1)
        assert all(v1 == v2 for v1, v2 in pair.identity.items())

    def test_asymmetric_survival(self, small_pa):
        pair = independent_copies(small_pa, 0.9, s2=0.1, seed=2)
        assert pair.g1.num_edges > 3 * pair.g2.num_edges

    def test_copies_are_independent(self, small_pa):
        pair = independent_copies(small_pa, 0.5, seed=3)
        assert pair.g1 != pair.g2

    def test_with_vertex_deletion(self, small_pa):
        pair = independent_copies(small_pa, 0.8, vertex_deletion=0.2, seed=4)
        assert pair.g1.num_nodes < small_pa.num_nodes
        # identity only covers nodes in both copies
        for v1 in pair.identity:
            assert pair.g1.has_node(v1)
            assert pair.g2.has_node(v1)

    def test_with_noise(self, small_pa):
        pair = independent_copies(small_pa, 0.5, noise_edges=30, seed=5)
        extra = [e for e in pair.g1.edges() if not small_pa.has_edge(*e)]
        assert len(extra) == 30

    def test_reproducible(self, small_pa):
        a = independent_copies(small_pa, 0.5, seed=6)
        b = independent_copies(small_pa, 0.5, seed=6)
        assert a.g1 == b.g1 and a.g2 == b.g2
