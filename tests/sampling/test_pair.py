"""Unit tests for the GraphPair abstraction."""

import pytest

from repro.errors import SamplingError
from repro.graphs.graph import Graph
from repro.sampling.pair import GraphPair


@pytest.fixture
def pair():
    g1 = Graph.from_edges([(0, 1), (1, 2)], nodes=[3])
    g2 = Graph.from_edges([("a", "b"), ("b", "c")], nodes=["d"])
    identity = {0: "a", 1: "b", 2: "c", 3: "d"}
    return GraphPair(g1=g1, g2=g2, identity=identity)


class TestGraphPair:
    def test_reverse_identity(self, pair):
        assert pair.reverse_identity == {"a": 0, "b": 1, "c": 2, "d": 3}

    def test_identifiable_excludes_isolated(self, pair):
        # node 3 / "d" are isolated -> not identifiable
        assert sorted(pair.identifiable_nodes()) == [0, 1, 2]

    def test_identifiable_above_degree(self, pair):
        assert pair.identifiable_above_degree(1) == [1]

    def test_non_injective_identity_rejected(self):
        g1 = Graph.from_edges([(0, 1)])
        g2 = Graph.from_edges([("a", "b")])
        with pytest.raises(SamplingError):
            GraphPair(g1=g1, g2=g2, identity={0: "a", 1: "a"})

    def test_identity_key_must_exist(self):
        g1 = Graph.from_edges([(0, 1)])
        g2 = Graph.from_edges([("a", "b")])
        with pytest.raises(SamplingError):
            GraphPair(g1=g1, g2=g2, identity={9: "a"})

    def test_identity_value_must_exist(self):
        g1 = Graph.from_edges([(0, 1)])
        g2 = Graph.from_edges([("a", "b")])
        with pytest.raises(SamplingError):
            GraphPair(g1=g1, g2=g2, identity={0: "zzz"})

    def test_empty_identity_allowed(self):
        pair = GraphPair(g1=Graph(), g2=Graph(), identity={})
        assert pair.identifiable_nodes() == []

    def test_repr(self, pair):
        assert "identity_size=4" in repr(pair)
