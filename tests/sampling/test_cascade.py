"""Unit tests for the independent-cascade copy model."""

import pytest

from repro.errors import SamplingError
from repro.graphs.graph import Graph
from repro.sampling.cascade import cascade_copies, cascade_copy


class TestCascadeCopy:
    def test_p_zero_only_start(self, small_pa):
        out = cascade_copy(small_pa, 0.0, seed=1, start=0)
        assert out.num_nodes == 1

    def test_p_one_covers_component(self, small_pa):
        out = cascade_copy(small_pa, 1.0, seed=1, start=0)
        # node 0 is in the giant component of a PA graph
        assert out.num_nodes > 0.9 * small_pa.num_nodes

    def test_induced_subgraph_property(self, small_pa):
        out = cascade_copy(small_pa, 0.3, seed=2)
        for u in out.nodes():
            for v in small_pa.neighbors(u):
                if out.has_node(v):
                    assert out.has_edge(u, v)

    def test_default_start_is_max_degree(self, star):
        out = cascade_copy(star, 0.0, seed=1)
        assert out.has_node(0)  # the hub

    def test_unknown_start_raises(self, triangle):
        with pytest.raises(SamplingError):
            cascade_copy(triangle, 0.5, start=99)

    def test_empty_graph_raises(self):
        with pytest.raises(SamplingError):
            cascade_copy(Graph(), 0.5)

    def test_reproducible(self, small_pa):
        a = cascade_copy(small_pa, 0.2, seed=3)
        b = cascade_copy(small_pa, 0.2, seed=3)
        assert a == b

    def test_adoption_monotone_in_p(self, small_pa):
        small = cascade_copy(small_pa, 0.05, seed=4).num_nodes
        large = cascade_copy(small_pa, 0.5, seed=4).num_nodes
        assert large >= small


class TestCascadeCopies:
    def test_identity_is_intersection(self, small_pa):
        pair = cascade_copies(small_pa, 0.3, seed=5)
        for v in pair.identity:
            assert pair.g1.has_node(v)
            assert pair.g2.has_node(v)

    def test_copies_differ(self, small_pa):
        pair = cascade_copies(small_pa, 0.3, seed=6)
        assert pair.g1 != pair.g2

    def test_same_start_node(self, small_pa):
        pair = cascade_copies(small_pa, 0.2, seed=7, start=0)
        assert pair.g1.has_node(0)
        assert pair.g2.has_node(0)

    def test_reproducible(self, small_pa):
        a = cascade_copies(small_pa, 0.3, seed=8)
        b = cascade_copies(small_pa, 0.3, seed=8)
        assert a.g1 == b.g1 and a.g2 == b.g2
