"""The CI perf-regression gate, exercised on synthetic bench JSONs.

``scripts/check_bench_regression.py`` is what turns the committed
``BENCH_*.json`` files into an enforced floor; these tests pin its
contract — and the synthetic >1.5x slowdown case is the demonstration
that the gate actually fails a regressed run.
"""

import importlib.util
import json
import pathlib

import pytest

SCRIPT = (
    pathlib.Path(__file__).resolve().parents[2]
    / "scripts"
    / "check_bench_regression.py"
)


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location(
        "check_bench_regression", SCRIPT
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def bench_json(path, means):
    """Write a minimal pytest-benchmark JSON with the given means."""
    data = {
        "benchmarks": [
            {
                "fullname": name,
                "name": name,
                "stats": {"mean": mean},
            }
            for name, mean in means.items()
        ]
    }
    path.write_text(json.dumps(data))
    return str(path)


class TestCompare:
    def test_identical_runs_pass(self, gate):
        means = {"a": 0.01, "b": 0.5}
        rows, regressions = gate.compare(means, dict(means), 1.5, 0.001)
        assert regressions == []
        assert all(verdict == "ok" for *_rest, verdict in rows)

    def test_synthetic_slowdown_regresses(self, gate):
        baseline = {"witness_join": 0.010}
        fresh = {"witness_join": 0.016}  # 1.6x > 1.5x
        rows, regressions = gate.compare(baseline, fresh, 1.5, 0.001)
        assert regressions == ["witness_join"]
        assert rows[0][4] == "REGRESSION"

    def test_noise_floor_tolerates_fast_benchmarks(self, gate):
        baseline = {"micro": 0.0001}  # 0.1 ms, under the 1 ms floor
        fresh = {"micro": 0.0009}  # 9x slower but pure noise
        rows, regressions = gate.compare(baseline, fresh, 1.5, 0.001)
        assert regressions == []
        assert "noise" in rows[0][4]

    def test_only_shared_benchmarks_compared(self, gate):
        baseline = {"kept": 0.01, "renamed_away": 0.01}
        fresh = {"kept": 0.01, "brand_new": 9.9}
        rows, regressions = gate.compare(baseline, fresh, 1.5, 0.001)
        assert [row[0] for row in rows] == ["kept"]
        assert regressions == []

    def test_speedups_never_fail(self, gate):
        rows, regressions = gate.compare({"a": 1.0}, {"a": 0.2}, 1.5, 0.001)
        assert regressions == []


class TestBackendColumns:
    def test_suffix_classification(self, gate):
        assert gate.backend_of("m.py::test_bench_join") == "dict"
        assert gate.backend_of("m.py::test_bench_join_csr") == "csr"
        assert (
            gate.backend_of("m.py::test_bench_join_csr_numpy")
            == "csr-numpy"
        )
        assert gate.backend_of("m.py::test_bench_join_native") == "native"

    def test_parametrized_ids_ignored(self, gate):
        assert gate.backend_of("m.py::test_bench_scaling_csr[4]") == "csr"
        assert (
            gate.backend_of("m.py::test_bench_scaling_native[2-True]")
            == "native"
        )

    def test_report_groups_per_backend(self, gate, tmp_path, capsys):
        """A native regression is reported in its own column group."""
        means = {
            "b.py::test_bench_join": 0.020,
            "b.py::test_bench_join_csr": 0.010,
            "b.py::test_bench_join_native": 0.005,
        }
        fresh = dict(means)
        fresh["b.py::test_bench_join_csr"] = 0.002  # 5x faster
        fresh["b.py::test_bench_join_native"] = 0.009  # 1.8x slower
        base = bench_json(tmp_path / "base.json", means)
        new = bench_json(tmp_path / "fresh.json", fresh)
        assert gate.main([base, new, "--label", "cols"]) == 1
        out = capsys.readouterr().out
        assert "backend native: REGRESSION (1 of 1)" in out
        assert "backend csr: ok (1 benchmarks)" in out
        assert "backend dict: ok (1 benchmarks)" in out

    def test_new_backend_column_skipped_with_note(
        self, gate, tmp_path, capsys
    ):
        """A fresh-only column is a baseline refresh, not an error."""
        base = bench_json(
            tmp_path / "base.json", {"b.py::test_bench_join_csr": 0.010}
        )
        new = bench_json(
            tmp_path / "fresh.json",
            {
                "b.py::test_bench_join_csr": 0.010,
                "b.py::test_bench_join_native": 0.004,
            },
        )
        assert gate.main([base, new]) == 0
        out = capsys.readouterr().out
        assert "no baseline entry yet" in out
        assert "test_bench_join_native" in out


class TestPerBenchmarkFloors:
    def test_longest_matching_override_wins(self, gate):
        overrides = [
            ("bench_kernels", 0.0001),
            ("bench_kernels.py::test_bench_pack", 0.050),
        ]
        assert (
            gate.floor_for(
                "bench_kernels.py::test_bench_pack[4]", 0.001, overrides
            )
            == 0.050
        )
        assert (
            gate.floor_for(
                "bench_kernels.py::test_bench_join", 0.001, overrides
            )
            == 0.0001
        )

    def test_no_match_falls_back_to_default(self, gate):
        assert (
            gate.floor_for("bench_other.py::t", 0.001, [("zzz", 9.0)])
            == 0.001
        )

    def test_override_gates_a_sub_ms_benchmark(self, gate, tmp_path):
        """A microkernel suite can opt in below the global 1 ms floor."""
        base = bench_json(tmp_path / "base.json", {"micro": 0.0001})
        fresh = bench_json(tmp_path / "fresh.json", {"micro": 0.0009})
        assert gate.main([base, fresh]) == 0  # global floor: noise
        assert (
            gate.main([base, fresh, "--floor", "micro=0.00005"]) == 1
        )

    def test_override_silences_a_jittery_benchmark(
        self, gate, tmp_path, capsys
    ):
        """A jittery suite can raise its floor without unguarding the
        rest of the file."""
        means = {"jittery": 0.004, "steady": 0.050}
        fresh = dict(means, jittery=0.012)  # 3x, but within its floor
        base = bench_json(tmp_path / "base.json", means)
        new = bench_json(tmp_path / "fresh.json", fresh)
        assert gate.main([base, new]) == 1
        assert (
            gate.main([base, new, "--floor", "jittery=0.01"]) == 0
        )
        assert "noise (under 10 ms floor)" in capsys.readouterr().out

    def test_compare_defaults_keep_old_signature(self, gate):
        """compare() without floors behaves exactly as before."""
        rows, regressions = gate.compare(
            {"a": 0.010}, {"a": 0.016}, 1.5, 0.001
        )
        assert regressions == ["a"]
        assert rows[0][4] == "REGRESSION"

    @pytest.mark.parametrize(
        "spec", ["nonsense", "=0.1", "name=", "name=-1", "name=abc"]
    )
    def test_malformed_override_rejected(self, gate, tmp_path, spec):
        base = bench_json(tmp_path / "base.json", {"a": 0.01})
        with pytest.raises(SystemExit):
            gate.main([base, base, "--floor", spec])


class TestMainExitCodes:
    def test_ok_run_exits_zero(self, gate, tmp_path, capsys):
        base = bench_json(tmp_path / "base.json", {"a": 0.01})
        fresh = bench_json(tmp_path / "fresh.json", {"a": 0.011})
        assert gate.main([base, fresh]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "1.10x" in out

    def test_regression_exits_one_with_delta_table(
        self, gate, tmp_path, capsys
    ):
        """The acceptance demonstration: synthetic >1.5x fails CI."""
        base = bench_json(
            tmp_path / "base.json", {"join": 0.020, "select": 0.004}
        )
        fresh = bench_json(
            tmp_path / "fresh.json", {"join": 0.035, "select": 0.004}
        )
        assert gate.main([base, fresh, "--label", "synthetic"]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "join" in out and "1.75x" in out
        assert "FAIL" in out

    def test_custom_threshold(self, gate, tmp_path):
        base = bench_json(tmp_path / "base.json", {"a": 0.010})
        fresh = bench_json(tmp_path / "fresh.json", {"a": 0.016})
        assert gate.main([base, fresh, "--threshold", "2.0"]) == 0
        assert gate.main([base, fresh, "--threshold", "1.5"]) == 1

    def test_disjoint_files_fail_loudly(self, gate, tmp_path, capsys):
        base = bench_json(tmp_path / "base.json", {"a": 0.01})
        fresh = bench_json(tmp_path / "fresh.json", {"b": 0.01})
        assert gate.main([base, fresh]) == 1
        assert "no shared benchmarks" in capsys.readouterr().out

    def test_unreadable_input_exits_two(self, gate, tmp_path):
        missing = str(tmp_path / "nope.json")
        fresh = bench_json(tmp_path / "fresh.json", {"a": 0.01})
        assert gate.main([missing, fresh]) == 2

    def test_real_committed_baselines_self_compare(self, gate):
        """The committed trajectory files satisfy the gate's schema."""
        repo = pathlib.Path(__file__).resolve().parents[2]
        for name in (
            "BENCH_kernels.json",
            "BENCH_parallel.json",
            "BENCH_blocked.json",
        ):
            path = repo / name
            assert path.exists(), f"{name} missing from the repo root"
            means = gate.load_means(str(path))
            assert means, f"{name} has no benchmarks"
            assert gate.main([str(path), str(path)]) == 0
