"""Tests for ``scripts/gen_api_docs.py`` (generated docs stay fresh)."""

import importlib.util
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def gen():
    spec = importlib.util.spec_from_file_location(
        "gen_api_docs", REPO / "scripts" / "gen_api_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestRendering:
    def test_matcher_table_covers_registry(self, gen):
        from repro.registry import matcher_names

        table = gen.matcher_table()
        for name in matcher_names():
            assert f"`{name}`" in table

    def test_api_render_is_deterministic(self, gen):
        assert gen.render_api() == gen.render_api()

    def test_api_render_contains_every_section(self, gen):
        text = gen.render_api()
        for section, entries in gen.SECTIONS:
            assert f"## {section}" in text
            for title, _spec in entries:
                assert f"### `{title}`" in text

    def test_every_documented_object_resolves(self, gen):
        for _section, entries in gen.SECTIONS:
            for _title, spec in entries:
                assert gen._resolve(spec) is not None

    def test_readme_splice_replaces_between_markers(self, gen):
        text = (
            "# x\n"
            f"{gen.TABLE_BEGIN}\nstale table\n{gen.TABLE_END}\n"
            "tail\n"
        )
        out = gen.render_readme(text)
        assert "stale table" not in out
        assert "| matcher |" in out
        assert out.endswith("tail\n")

    def test_readme_without_markers_fails_loudly(self, gen):
        with pytest.raises(SystemExit):
            gen.render_readme("# no markers here\n")


class TestCheckMode:
    def test_committed_docs_are_current(self, gen):
        """The repo must never commit a stale docs/API.md or README
        table — the same invariant CI's build-docs job enforces."""
        assert gen.main(["--check"]) == 0

    def test_check_detects_stale_api(self, gen, capsys):
        api = REPO / "docs" / "API.md"
        original = api.read_text(encoding="utf-8")
        try:
            api.write_text(original + "\nstale\n", encoding="utf-8")
            assert gen.main(["--check"]) == 1
            out = capsys.readouterr().out
            assert "docs/API.md" in out
        finally:
            api.write_text(original, encoding="utf-8")

    def test_write_then_check_roundtrip(self, gen, capsys):
        assert gen.main([]) == 0
        assert gen.main(["--check"]) == 0
