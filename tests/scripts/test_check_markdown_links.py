"""Tests for ``scripts/check_markdown_links.py``."""

import importlib.util
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def checker():
    spec = importlib.util.spec_from_file_location(
        "check_markdown_links",
        REPO / "scripts" / "check_markdown_links.py",
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestLinkExtraction:
    def test_inline_links_found_with_line_numbers(self, checker):
        text = "a [one](x.md) b\nplain\n[two](y.md#frag)\n"
        links = list(checker.iter_links(text))
        assert links == [(1, "x.md"), (3, "y.md#frag")]

    def test_code_fences_skipped(self, checker):
        text = "```\n[not a link](nope.md)\n```\n[real](a.md)\n"
        assert [t for _l, t in checker.iter_links(text)] == ["a.md"]


class TestCheckFile:
    def test_existing_relative_link_ok(self, checker, tmp_path):
        (tmp_path / "target.md").write_text("hi")
        md = tmp_path / "doc.md"
        md.write_text("[t](target.md) and [anchor](target.md#sec)")
        # Paths outside the repo are skipped entirely, so craft the
        # files inside the repo tree via monkeypatching REPO instead.
        checker_repo = checker.REPO
        try:
            checker.REPO = tmp_path
            assert checker.check_file(md) == []
        finally:
            checker.REPO = checker_repo

    def test_broken_link_reported(self, checker, tmp_path):
        md = tmp_path / "doc.md"
        md.write_text("line\n[b](missing.md)\n")
        checker_repo = checker.REPO
        try:
            checker.REPO = tmp_path
            problems = checker.check_file(md)
        finally:
            checker.REPO = checker_repo
        assert len(problems) == 1
        assert "doc.md:2" in problems[0]
        assert "missing.md" in problems[0]

    def test_external_and_anchor_links_skipped(self, checker, tmp_path):
        md = tmp_path / "doc.md"
        md.write_text(
            "[w](https://example.com/x) [m](mailto:a@b.c) [a](#here)"
        )
        checker_repo = checker.REPO
        try:
            checker.REPO = tmp_path
            assert checker.check_file(md) == []
        finally:
            checker.REPO = checker_repo

    def test_outside_repo_target_skipped(self, checker, tmp_path):
        md = tmp_path / "doc.md"
        md.write_text("[badge](../../actions/workflows/ci.yml)")
        checker_repo = checker.REPO
        try:
            checker.REPO = tmp_path
            assert checker.check_file(md) == []
        finally:
            checker.REPO = checker_repo


class TestMain:
    def test_repo_docs_all_resolve(self, checker, capsys):
        """The committed docs must have no broken links (CI invariant)."""
        assert checker.main([]) == 0

    def test_explicit_missing_file_is_usage_error(self, checker, capsys):
        assert checker.main(["/no/such/file.md"]) == 2

    def test_broken_link_fails(self, checker, tmp_path, capsys):
        md = REPO / "docs" / "_linkcheck_tmp_test.md"
        md.write_text("[broken](definitely-missing-file.md)\n")
        try:
            assert checker.main([str(md)]) == 1
            assert "broken" in capsys.readouterr().out
        finally:
            md.unlink()
