"""Tests for ``scripts/check_lint_baseline.py`` (the debt ratchet)."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]

MYPY_INI = (
    "[mypy]\n"
    "strict_equality = True\n"
    "\n"
    "[mypy-scipy.*]\n"
    "ignore_missing_imports = True\n"
    "\n"
    "[mypy-repro.legacy.*]\n"
    "ignore_errors = True\n"
    "\n"
    "[mypy-repro.olddriver]\n"
    "ignore_errors = True\n"
)


@pytest.fixture(scope="module")
def ratchet():
    spec = importlib.util.spec_from_file_location(
        "check_lint_baseline",
        REPO / "scripts" / "check_lint_baseline.py",
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture
def sandbox(ratchet, tmp_path, monkeypatch):
    """Point the script's module paths at a synthetic repo."""
    ini = tmp_path / "mypy.ini"
    ini.write_text(MYPY_INI)
    baseline = tmp_path / "strict_ratchet.json"
    baseline.write_text(
        json.dumps(
            {
                "mypy_allowlist": ["repro.legacy.*", "repro.olddriver"],
                "lint_suppressions": 0,
            }
        )
    )
    src = tmp_path / "src"
    src.mkdir()
    (src / "mod.py").write_text("x = 1\n")
    monkeypatch.setattr(ratchet, "MYPY_INI", ini)
    monkeypatch.setattr(ratchet, "BASELINE", baseline)
    monkeypatch.setattr(ratchet, "SRC", src)
    return tmp_path


class TestAllowlistParsing:
    def test_only_ignore_errors_sections_count(self, ratchet, sandbox):
        allow = ratchet.mypy_allowlist(sandbox / "mypy.ini")
        # scipy's ignore_missing_imports section is not debt.
        assert allow == ["repro.legacy.*", "repro.olddriver"]


class TestRatchet:
    def test_matching_state_passes(self, ratchet, sandbox, capsys):
        assert ratchet.main([]) == 0
        assert "ratchet ok" in capsys.readouterr().out

    def test_grown_allowlist_fails(self, ratchet, sandbox, capsys):
        ini = sandbox / "mypy.ini"
        ini.write_text(
            ini.read_text() + "\n[mypy-repro.newmod]\nignore_errors = True\n"
        )
        assert ratchet.main([]) == 1
        err = capsys.readouterr().err
        assert "grew" in err
        assert "repro.newmod" in err

    def test_stale_shrunken_baseline_fails(self, ratchet, sandbox, capsys):
        ini = sandbox / "mypy.ini"
        ini.write_text(
            ini.read_text().replace(
                "[mypy-repro.olddriver]\nignore_errors = True\n", ""
            )
        )
        assert ratchet.main([]) == 1
        assert "--update" in capsys.readouterr().err

    def test_new_suppression_fails(self, ratchet, sandbox, capsys):
        (sandbox / "src" / "mod.py").write_text(
            "import time\n"
            "t = time.time()  # repro-lint: ignore[RPR001]\n"
        )
        assert ratchet.main([]) == 1
        assert "suppression" in capsys.readouterr().err

    def test_prose_mention_is_not_a_suppression(self, ratchet, sandbox):
        (sandbox / "src" / "mod.py").write_text(
            '"""Docs about # repro-lint: ignore markers."""\n'
            "#: the ``# repro-lint: ignore`` syntax is described here\n"
            "x = 1\n"
        )
        assert ratchet.main([]) == 0

    def test_update_rewrites_baseline(self, ratchet, sandbox):
        ini = sandbox / "mypy.ini"
        ini.write_text(
            ini.read_text().replace(
                "[mypy-repro.olddriver]\nignore_errors = True\n", ""
            )
        )
        assert ratchet.main(["--update"]) == 0
        data = json.loads((sandbox / "strict_ratchet.json").read_text())
        assert data["mypy_allowlist"] == ["repro.legacy.*"]
        assert ratchet.main([]) == 0


class TestRealRepoState:
    """The committed baseline must match the committed mypy.ini."""

    def test_repo_ratchet_is_green(self, ratchet):
        assert ratchet.main([]) == 0

    def test_strict_targets_never_allowlisted(self, ratchet):
        allow = ratchet.mypy_allowlist(REPO / "mypy.ini")
        for module in allow:
            assert not module.startswith("repro.core")
            assert not module.startswith("repro.incremental")
            assert not module.startswith("repro.analysis")
            assert not module.startswith("repro.graphs")
