"""The CI quality-regression gate, exercised on synthetic quality JSONs.

``scripts/check_quality_regression.py`` pins the candidate-pruning
quality trade to the committed ``QUALITY_pruning.json``; these tests pin
its contract — and the synthetic precision/recall-drop case is the
demonstration that the gate actually fails a degraded run.
"""

import importlib.util
import json
import pathlib

import pytest

SCRIPT = (
    pathlib.Path(__file__).resolve().parents[2]
    / "scripts"
    / "check_quality_regression.py"
)
BASELINE = (
    pathlib.Path(__file__).resolve().parents[2] / "QUALITY_pruning.json"
)


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location(
        "check_quality_regression", SCRIPT
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def quality_json(path, modes):
    path.write_text(json.dumps({"modes": modes}))
    return str(path)


def table(**overrides):
    """A plausible quality table, with per-mode overrides applied."""
    modes = {
        "none": {
            "precision": 1.0,
            "recall": 0.65,
            "candidate_pairs": 3_400_000,
        },
        "community-f0": {
            "precision": 0.994,
            "recall": 0.66,
            "candidate_pairs": 1_980_000,
        },
    }
    for label, fields in overrides.items():
        modes[label].update(fields)
    return modes


class TestCompare:
    def test_identical_tables_pass(self, gate):
        base = {"modes": table()}
        lines, regressions = gate.compare(base, base, 0.01, 1.1)
        assert regressions == []
        assert lines and all("REGRESSION" not in ln for ln in lines)

    def test_recall_drop_regresses(self, gate):
        base = {"modes": table()}
        fresh = {"modes": table(**{"community-f0": {"recall": 0.60}})}
        _lines, regressions = gate.compare(base, fresh, 0.01, 1.1)
        assert len(regressions) == 1
        assert "recall fell" in regressions[0]

    def test_precision_drop_regresses(self, gate):
        base = {"modes": table()}
        fresh = {"modes": table(none={"precision": 0.95})}
        _lines, regressions = gate.compare(base, fresh, 0.01, 1.1)
        assert any("precision fell" in r for r in regressions)

    def test_drop_within_tolerance_passes(self, gate):
        base = {"modes": table()}
        fresh = {"modes": table(**{"community-f0": {"recall": 0.655}})}
        _lines, regressions = gate.compare(base, fresh, 0.01, 1.1)
        assert regressions == []

    def test_candidate_blowup_regresses(self, gate):
        """Pruning that stops pruning fails even though recall rises."""
        fresh_modes = table(
            **{
                "community-f0": {
                    "candidate_pairs": 3_400_000,
                    "recall": 0.70,
                }
            }
        )
        _lines, regressions = gate.compare(
            {"modes": table()}, {"modes": fresh_modes}, 0.01, 1.1
        )
        assert len(regressions) == 1
        assert "no longer pruning" in regressions[0]

    def test_improvements_never_fail(self, gate):
        fresh = {
            "modes": table(
                **{
                    "community-f0": {
                        "recall": 0.70,
                        "precision": 1.0,
                        "candidate_pairs": 1_000_000,
                    }
                }
            )
        }
        _lines, regressions = gate.compare(
            {"modes": table()}, fresh, 0.01, 1.1
        )
        assert regressions == []


class TestMainExitCodes:
    def test_ok_run_exits_zero(self, gate, tmp_path, capsys):
        base = quality_json(tmp_path / "base.json", table())
        assert gate.main([base, "--fresh", base]) == 0
        assert "OK" in capsys.readouterr().out

    def test_synthetic_drop_exits_one(self, gate, tmp_path, capsys):
        """The acceptance demonstration: a degraded run fails CI."""
        base = quality_json(tmp_path / "base.json", table())
        fresh = quality_json(
            tmp_path / "fresh.json",
            table(
                **{
                    "community-f0": {
                        "recall": 0.55,
                        "precision": 0.90,
                    }
                }
            ),
        )
        assert gate.main([base, "--fresh", fresh]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "recall fell" in out and "precision fell" in out

    def test_disjoint_modes_fail_loudly(self, gate, tmp_path, capsys):
        base = quality_json(
            tmp_path / "base.json", {"other": table()["none"]}
        )
        fresh = quality_json(tmp_path / "fresh.json", table())
        assert gate.main([base, "--fresh", fresh]) == 1
        assert "no shared pruning modes" in capsys.readouterr().out

    def test_unreadable_baseline_exits_two(self, gate, tmp_path):
        fresh = quality_json(tmp_path / "fresh.json", table())
        missing = str(tmp_path / "nope.json")
        assert gate.main([missing, "--fresh", fresh]) == 2

    def test_unreadable_fresh_exits_two(self, gate, tmp_path):
        base = quality_json(tmp_path / "base.json", table())
        assert (
            gate.main([base, "--fresh", str(tmp_path / "nope.json")])
            == 2
        )

    def test_baseline_required_without_emit(self, gate):
        with pytest.raises(SystemExit):
            gate.main([])

    def test_custom_tolerance(self, gate, tmp_path):
        base = quality_json(tmp_path / "base.json", table())
        fresh = quality_json(
            tmp_path / "fresh.json",
            table(**{"community-f0": {"recall": 0.61}}),
        )
        assert gate.main([base, "--fresh", fresh]) == 1
        assert (
            gate.main([base, "--fresh", fresh, "--tolerance", "0.1"])
            == 0
        )


class TestCommittedBaseline:
    def test_committed_baseline_exists_and_self_compares(self, gate):
        """The committed QUALITY_pruning.json satisfies the gate."""
        assert BASELINE.exists(), "QUALITY_pruning.json missing"
        assert gate.main([str(BASELINE), "--fresh", str(BASELINE)]) == 0

    def test_committed_baseline_covers_both_modes(self, gate):
        data = json.loads(BASELINE.read_text())
        assert set(gate.MODES) <= set(data["modes"])
        pruned = data["modes"]["community-f0"]
        unpruned = data["modes"]["none"]
        # The committed trade must show pruning actually biting.
        assert pruned["candidate_pairs"] < unpruned["candidate_pairs"]
        assert "pruning_recall_cost" in pruned
