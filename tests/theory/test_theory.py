"""Tests for the theory module: bounds and empirical validation of the
paper's witness-count predictions (Section 4.1)."""

import math

import pytest

from repro.core.scoring import witness_score
from repro.generators.erdos_renyi import gnp_graph
from repro.sampling.edge_sampling import independent_copies
from repro.seeds.generators import sample_seeds
from repro.theory.bounds import (
    chernoff_lower_tail,
    chernoff_upper_tail,
    union_bound,
)
from repro.theory.predictions import (
    er_expected_witnesses_correct,
    er_expected_witnesses_wrong,
    er_gap_regime,
    er_large_p_threshold,
    pa_identification_threshold_degree,
    recommended_threshold,
)


class TestBounds:
    def test_chernoff_lower_decreasing_in_mean(self):
        assert chernoff_lower_tail(100, 0.5) < chernoff_lower_tail(10, 0.5)

    def test_chernoff_upper_decreasing_in_delta(self):
        assert chernoff_upper_tail(50, 1.0) < chernoff_upper_tail(50, 0.1)

    def test_chernoff_bounds_at_zero_delta(self):
        assert chernoff_lower_tail(10, 0.0) == 1.0
        assert chernoff_upper_tail(10, 0.0) == 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            chernoff_lower_tail(-1, 0.5)
        with pytest.raises(ValueError):
            chernoff_lower_tail(1, 2.0)
        with pytest.raises(ValueError):
            chernoff_upper_tail(1, -0.1)

    def test_union_bound_caps_at_one(self):
        assert union_bound(0.2, 10) == 1.0
        assert union_bound(0.001, 10) == pytest.approx(0.01)

    def test_union_bound_invalid(self):
        with pytest.raises(ValueError):
            union_bound(-0.1, 2)
        with pytest.raises(ValueError):
            union_bound(0.1, -2)


class TestPredictionsFormulas:
    def test_correct_exceeds_wrong_by_factor_p(self):
        n, p, s, l = 1000, 0.05, 0.5, 0.1
        correct = er_expected_witnesses_correct(n, p, s, l)
        wrong = er_expected_witnesses_wrong(n, p, s, l)
        assert correct / wrong == pytest.approx((n - 1) / ((n - 2) * p))

    def test_threshold_formula(self):
        n, s, l = 10_000, 0.5, 0.1
        t = er_large_p_threshold(n, s, l)
        assert t == pytest.approx(24 * math.log(n) / (s * s * l * (n - 2)))

    def test_gap_regimes(self):
        n, s, l = 10_000, 0.5, 0.2
        t = er_large_p_threshold(n, s, l)
        assert er_gap_regime(n, 2 * t, s, l) == "concentration"
        assert er_gap_regime(n, t / 2, s, l) == "sparse"

    def test_pa_threshold_degree(self):
        d = pa_identification_threshold_degree(10_000, 0.5, 0.1)
        assert d == pytest.approx(4 * math.log(10_000) ** 2 / (0.25 * 0.1))

    def test_recommended_thresholds(self):
        assert recommended_threshold("er") == 3
        assert recommended_threshold("PA") == 9
        with pytest.raises(ValueError):
            recommended_threshold("unknown")


class TestEmpiricalValidation:
    """Theorem 1's expectations hold empirically on sampled ER copies."""

    @pytest.fixture(scope="class")
    def er_setup(self):
        n, p, s, l = 600, 0.08, 0.7, 0.3
        g = gnp_graph(n, p, seed=21)
        pair = independent_copies(g, s, seed=22)
        seeds = sample_seeds(pair, l, seed=23)
        return n, p, s, l, pair, seeds

    def test_correct_pair_witness_mean(self, er_setup):
        n, p, s, l, pair, seeds = er_setup
        expected = er_expected_witnesses_correct(n, p, s, l)
        sample = [
            witness_score(pair.g1, pair.g2, seeds, v, v)
            for v in range(0, n, 7)
            if v not in seeds
        ]
        mean = sum(sample) / len(sample)
        assert abs(mean - expected) < 0.35 * expected

    def test_wrong_pair_witness_mean_below_correct(self, er_setup):
        n, p, s, l, pair, seeds = er_setup
        wrong = [
            witness_score(pair.g1, pair.g2, seeds, v, (v + 1) % n)
            for v in range(0, n, 7)
        ]
        correct = [
            witness_score(pair.g1, pair.g2, seeds, v, v)
            for v in range(0, n, 7)
        ]
        assert sum(wrong) < 0.4 * sum(correct)
