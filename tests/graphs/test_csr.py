"""Unit tests for the frozen CSR view."""

import numpy as np
import pytest

from repro.errors import NodeNotFoundError
from repro.graphs.csr import CSRGraph
from repro.graphs.graph import Graph


@pytest.fixture
def csr(small_pa):
    return CSRGraph(small_pa)


class TestCSRConstruction:
    def test_sizes_match(self, small_pa, csr):
        assert csr.num_nodes == small_pa.num_nodes
        assert csr.num_edges == small_pa.num_edges

    def test_indptr_monotone(self, csr):
        assert np.all(np.diff(csr.indptr) >= 0)

    def test_neighbors_sorted(self, csr):
        for i in range(min(50, csr.num_nodes)):
            nbrs = csr.neighbors(i)
            assert np.all(np.diff(nbrs) > 0)

    def test_degrees_match(self, small_pa, csr):
        for node in list(small_pa.nodes())[:100]:
            dense = csr.dense_id(node)
            assert csr.degree(dense) == small_pa.degree(node)

    def test_degree_array(self, small_pa, csr):
        degs = csr.degree_array()
        assert int(degs.sum()) == 2 * small_pa.num_edges

    def test_custom_order(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        csr = CSRGraph(g, order=[2, 1, 0])
        assert csr.node_ids == [2, 1, 0]
        assert csr.degree(0) == g.degree(2)

    def test_order_must_cover_all_nodes(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        with pytest.raises(ValueError):
            CSRGraph(g, order=[0, 1])

    def test_order_rejects_duplicates(self):
        g = Graph.from_edges([(0, 1)])
        with pytest.raises(ValueError):
            CSRGraph(g, order=[0, 0])

    def test_order_rejects_unknown_nodes(self):
        g = Graph.from_edges([(0, 1)])
        with pytest.raises(NodeNotFoundError):
            CSRGraph(g, order=[0, 7])


class TestCSRQueries:
    def test_has_edge_agrees_with_graph(self, small_pa, csr):
        nodes = list(small_pa.nodes())[:40]
        for u in nodes:
            for v in nodes:
                if u == v:
                    continue
                assert csr.has_edge(
                    csr.dense_id(u), csr.dense_id(v)
                ) == small_pa.has_edge(u, v)

    def test_dense_id_missing_raises(self, csr):
        with pytest.raises(NodeNotFoundError):
            csr.dense_id("nope")

    def test_empty_graph(self):
        csr = CSRGraph(Graph())
        assert csr.num_nodes == 0
        assert csr.num_edges == 0

    def test_repr(self, csr):
        assert "CSRGraph" in repr(csr)
