"""Unit tests for BFS/path utilities, cross-checked against networkx."""

import networkx as nx
import pytest

from repro.errors import NodeNotFoundError
from repro.graphs.graph import Graph
from repro.graphs.paths import (
    average_shortest_path_length,
    bfs_distances,
    eccentricity,
    estimate_diameter,
    shortest_path,
)


class TestBfsDistances:
    def test_path_graph(self, path4):
        assert bfs_distances(path4, 0) == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_unreachable_excluded(self):
        g = Graph.from_edges([(0, 1), (5, 6)])
        dist = bfs_distances(g, 0)
        assert 5 not in dist

    def test_missing_source_raises(self, path4):
        with pytest.raises(NodeNotFoundError):
            bfs_distances(path4, 99)

    def test_matches_networkx(self, small_pa):
        ours = bfs_distances(small_pa, 0)
        nxg = nx.Graph(list(small_pa.edges()))
        theirs = nx.single_source_shortest_path_length(nxg, 0)
        assert ours == dict(theirs)


class TestShortestPath:
    def test_trivial(self, path4):
        assert shortest_path(path4, 2, 2) == [2]

    def test_path_endpoints(self, path4):
        path = shortest_path(path4, 0, 3)
        assert path == [0, 1, 2, 3]

    def test_disconnected_none(self):
        g = Graph.from_edges([(0, 1), (5, 6)])
        assert shortest_path(g, 0, 5) is None

    def test_path_is_valid_walk(self, small_pa):
        path = shortest_path(small_pa, 0, 500)
        assert path is not None
        for a, b in zip(path, path[1:]):
            assert small_pa.has_edge(a, b)

    def test_length_matches_networkx(self, small_pa):
        path = shortest_path(small_pa, 0, 500)
        nxg = nx.Graph(list(small_pa.edges()))
        assert len(path) - 1 == nx.shortest_path_length(nxg, 0, 500)

    def test_missing_nodes_raise(self, path4):
        with pytest.raises(NodeNotFoundError):
            shortest_path(path4, 0, 99)


class TestDiameterAndAverages:
    def test_eccentricity_path(self, path4):
        assert eccentricity(path4, 0) == 3
        assert eccentricity(path4, 1) == 2

    def test_estimate_diameter_path(self, path4):
        assert estimate_diameter(path4, samples=5, seed=1) == 3

    def test_estimate_diameter_empty(self):
        assert estimate_diameter(Graph()) == 0

    def test_estimated_diameter_lower_bounds_true(self, small_er):
        nxg = nx.Graph(list(small_er.edges()))
        giant = max(nx.connected_components(nxg), key=len)
        true_diam = nx.diameter(nxg.subgraph(giant))
        est = estimate_diameter(small_er, samples=8, seed=2)
        assert est <= true_diam
        assert est >= true_diam - 2  # double sweep is near-tight here

    def test_average_path_length_positive(self, small_pa):
        avg = average_shortest_path_length(small_pa, samples=10, seed=3)
        assert 1.0 < avg < 10.0

    def test_average_path_length_tiny(self):
        assert average_shortest_path_length(Graph()) == 0.0
