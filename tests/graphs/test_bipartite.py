"""Unit tests for the bipartite (affiliation) substrate."""

import pytest

from repro.errors import NodeNotFoundError
from repro.graphs.bipartite import BipartiteGraph


@pytest.fixture
def bip():
    b = BipartiteGraph()
    b.add_membership(0, "music")
    b.add_membership(1, "music")
    b.add_membership(1, "chess")
    b.add_membership(2, "chess")
    b.add_membership(3, "hiking")
    return b


class TestBipartiteBasics:
    def test_counts(self, bip):
        assert bip.num_users == 4
        assert bip.num_affiliations == 3
        assert bip.num_memberships == 5

    def test_duplicate_membership(self, bip):
        assert bip.add_membership(0, "music") is False
        assert bip.num_memberships == 5

    def test_affiliations_of(self, bip):
        assert bip.affiliations_of(1) == {"music", "chess"}

    def test_members_of(self, bip):
        assert bip.members_of("chess") == {1, 2}

    def test_missing_user_raises(self, bip):
        with pytest.raises(NodeNotFoundError):
            bip.affiliations_of(99)

    def test_missing_affiliation_raises(self, bip):
        with pytest.raises(NodeNotFoundError):
            bip.members_of("surfing")

    def test_isolated_user(self, bip):
        bip.add_user(9)
        assert bip.affiliations_of(9) == set()
        assert bip.num_users == 5

    def test_repr(self, bip):
        assert "num_users=4" in repr(bip)


class TestFold:
    def test_full_fold(self, bip):
        g = bip.fold()
        assert g.has_edge(0, 1)  # music
        assert g.has_edge(1, 2)  # chess
        assert not g.has_edge(0, 2)
        assert g.num_nodes == 4  # user 3 isolated but present
        assert g.degree(3) == 0

    def test_fold_subset(self, bip):
        g = bip.fold(["chess"])
        assert g.has_edge(1, 2)
        assert not g.has_edge(0, 1)
        assert g.num_nodes == 4

    def test_fold_empty_subset(self, bip):
        g = bip.fold([])
        assert g.num_edges == 0
        assert g.num_nodes == 4

    def test_fold_unknown_affiliation_raises(self, bip):
        with pytest.raises(NodeNotFoundError):
            bip.fold(["surfing"])

    def test_fold_single_member_community_no_edges(self, bip):
        g = bip.fold(["hiking"])
        assert g.num_edges == 0

    def test_fold_triangle_community(self):
        b = BipartiteGraph()
        for u in (0, 1, 2):
            b.add_membership(u, "club")
        g = b.fold()
        assert g.num_edges == 3  # a 3-clique
