"""Unit tests for the dense-interning GraphPairIndex."""

import numpy as np
import pytest

from repro.core.ordering import node_sort_key
from repro.errors import NodeNotFoundError
from repro.graphs.graph import Graph
from repro.graphs.pair_index import GraphPairIndex, degree_exponents
from repro.graphs.stats import (
    average_degree,
    degree_array,
    degree_histogram,
)


@pytest.fixture
def index(pa_pair):
    return GraphPairIndex(pa_pair.g1, pa_pair.g2)


class TestDegreeExponents:
    def test_matches_bit_length(self):
        degrees = np.array([0, 1, 2, 3, 4, 7, 8, 1023, 1024, 10**9])
        exps = degree_exponents(degrees)
        expected = [int(d).bit_length() - 1 for d in degrees]
        assert exps.tolist() == expected

    def test_empty(self):
        assert degree_exponents(np.empty(0, dtype=np.int64)).size == 0


class TestInterning:
    def test_canonical_order(self, index, pa_pair):
        assert index.csr1.node_ids == sorted(
            pa_pair.g1.nodes(), key=node_sort_key
        )
        assert index.csr2.node_ids == sorted(
            pa_pair.g2.nodes(), key=node_sort_key
        )

    def test_dense_roundtrip(self, index, pa_pair):
        for node in list(pa_pair.g1.nodes())[:50]:
            assert index.node1(index.dense1(node)) == node
        for node in list(pa_pair.g2.nodes())[:50]:
            assert index.node2(index.dense2(node)) == node

    def test_dense_id_order_is_canonical_order(self):
        g = Graph.from_edges([(2, 10), (10, 3)])
        index = GraphPairIndex(g, g.copy())
        # repr-lexicographic: "10" < "2" < "3"
        assert index.csr1.node_ids == [10, 2, 3]

    def test_link_interning_roundtrip(self, index, pa_pair):
        links = dict(list(pa_pair.identity.items())[:40])
        left, right = index.intern_links(links)
        assert len(left) == len(links)
        assert index.export_links(left, right) == links

    def test_unknown_link_endpoint_raises(self, index):
        with pytest.raises(NodeNotFoundError):
            index.intern_links({"nope": "nada"})


class TestArraysAgreeWithGraph:
    def test_degrees_match(self, index, pa_pair):
        for i, node in enumerate(index.csr1.node_ids):
            assert index.deg1[i] == pa_pair.g1.degree(node)

    def test_neighbors_match(self, index, pa_pair):
        for i, node in enumerate(index.csr1.node_ids[:80]):
            dense_nbrs = {
                index.csr1.node_ids[j]
                for j in index.csr1.neighbors(i).tolist()
            }
            assert dense_nbrs == pa_pair.g1.neighbors(node)

    def test_exponents_match_degrees(self, index):
        for deg, exp in zip(index.deg1.tolist(), index.exp1.tolist()):
            assert exp == deg.bit_length() - 1

    def test_stats_parity(self, index, pa_pair):
        """The CSR view and the Graph view agree on degree statistics."""
        assert sorted(index.deg1.tolist()) == sorted(
            degree_array(pa_pair.g1).tolist()
        )
        hist = degree_histogram(pa_pair.g1)
        values, counts = np.unique(index.deg1, return_counts=True)
        assert dict(zip(values.tolist(), counts.tolist())) == hist
        assert index.deg1.mean() == pytest.approx(average_degree(pa_pair.g1))

    def test_eligibility_masks(self, index):
        for floor in (1, 2, 4, 8):
            m1, m2 = index.eligibility(floor)
            assert np.array_equal(m1, index.deg1 >= floor)
            assert np.array_equal(m2, index.deg2 >= floor)

    def test_empty_graphs(self):
        index = GraphPairIndex(Graph(), Graph())
        assert index.n1 == 0 and index.n2 == 0
        left, right = index.intern_links({})
        assert len(left) == 0 and len(right) == 0
        assert index.export_links(left, right) == {}

    def test_repr(self, index):
        text = repr(index)
        assert "GraphPairIndex" in text and "n1=" in text
