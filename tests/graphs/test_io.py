"""Unit tests for edge-list I/O."""

import pytest

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.graphs.io import (
    iter_edge_list,
    read_edge_list,
    read_temporal_edge_list,
    write_edge_list,
    write_temporal_edge_list,
)
from repro.graphs.temporal import TemporalGraph


class TestEdgeListRoundTrip:
    def test_round_trip(self, tmp_path, small_pa):
        path = tmp_path / "g.tsv"
        write_edge_list(small_pa, path)
        back = read_edge_list(path)
        assert back == small_pa

    def test_round_trip_gzip(self, tmp_path, triangle):
        path = tmp_path / "g.tsv.gz"
        write_edge_list(triangle, path)
        assert read_edge_list(path) == triangle

    def test_isolated_nodes_survive(self, tmp_path):
        g = Graph.from_edges([(0, 1)], nodes=[7, 8])
        path = tmp_path / "g.tsv"
        write_edge_list(g, path)
        back = read_edge_list(path)
        assert back.has_node(7)
        assert back.degree(8) == 0

    def test_string_ids_round_trip(self, tmp_path):
        g = Graph.from_edges([("alice", "bob")])
        path = tmp_path / "g.tsv"
        write_edge_list(g, path)
        back = read_edge_list(path)
        assert back.has_edge("alice", "bob")

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "g.tsv"
        path.write_text("# a comment\n\n0\t1\n# another\n1\t2\n")
        g = read_edge_list(path)
        assert g.num_edges == 2

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "g.tsv"
        path.write_text("0\n")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_iter_edge_list(self, tmp_path, triangle):
        path = tmp_path / "g.tsv"
        write_edge_list(triangle, path)
        pairs = list(iter_edge_list(path))
        assert len(pairs) == 3


class TestTemporalRoundTrip:
    def test_round_trip(self, tmp_path):
        tg = TemporalGraph.from_events([(0, 1, 5), (1, 2, 6), (0, 1, 5)])
        path = tmp_path / "t.tsv"
        write_temporal_edge_list(tg, path)
        back = read_temporal_edge_list(path)
        assert back.num_events == 3
        assert sorted(back.events()) == sorted(tg.events())

    def test_malformed_temporal_raises(self, tmp_path):
        path = tmp_path / "t.tsv"
        path.write_text("0\t1\n")
        with pytest.raises(GraphError):
            read_temporal_edge_list(path)

    def test_temporal_gzip(self, tmp_path):
        tg = TemporalGraph.from_events([(0, 1, 5)])
        path = tmp_path / "t.tsv.gz"
        write_temporal_edge_list(tg, path)
        assert read_temporal_edge_list(path).num_events == 1
