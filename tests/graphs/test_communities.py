"""Seeded grow-only label propagation + the allowed-pair relation.

The partitioner behind ``candidate_pruning="community"``: deterministic
Voronoi-like cells around the glued seed slots, a quotient-graph
frontier ring, and the hard invariant that unassigned nodes (``-1``)
are never pruned.
"""

import numpy as np
import pytest

from repro.core.config import MatcherConfig
from repro.core.matcher import UserMatching
from repro.generators.affiliation import affiliation_graph
from repro.graphs.communities import (
    assign_communities,
    assignment_for,
    union_label_propagation,
)
from repro.graphs.graph import Graph
from repro.graphs.pair_index import GraphPairIndex
from repro.sampling.community import correlated_community_copies
from repro.seeds.generators import sample_seeds


def clique_edges(nodes):
    return [
        (a, b) for i, a in enumerate(nodes) for b in nodes[i + 1 :]
    ]


@pytest.fixture
def two_cliques():
    """Two 6-cliques joined by one bridge, identical copies, one seed each.

    The canonical pruning workload: the partition should recover the
    cliques, and the bridge makes them adjacent in the quotient graph.
    """
    a = list(range(6))
    b = list(range(10, 16))
    edges = clique_edges(a) + clique_edges(b) + [(5, 10)]
    g = Graph.from_edges(edges)
    index = GraphPairIndex(g, g)
    seeds = {0: 0, 15: 15}
    seed_l, seed_r = index.intern_links(seeds)
    return g, index, seeds, seed_l, seed_r


class TestUnionPropagation:
    def test_seeds_keep_their_own_labels(self, two_cliques):
        _g, index, _seeds, seed_l, seed_r = two_cliques
        labels, _u1, _u2, _edges = union_label_propagation(
            index, seed_l, seed_r
        )
        assert np.array_equal(labels[seed_l], seed_l)

    def test_every_clique_node_reached(self, two_cliques):
        _g, index, _seeds, seed_l, seed_r = two_cliques
        labels, union1, _u2, _edges = union_label_propagation(
            index, seed_l, seed_r
        )
        assert (labels[union1] >= 0).all()

    def test_grow_only_no_giant_community(self, two_cliques):
        """Re-voting LPA collapses this graph into one label; grow-only
        must keep both seed cells alive."""
        _g, index, _seeds, seed_l, seed_r = two_cliques
        labels, union1, _u2, _edges = union_label_propagation(
            index, seed_l, seed_r
        )
        assert len(np.unique(labels[union1])) == 2

    def test_no_seeds_leaves_everything_unassigned(self, two_cliques):
        _g, index, *_ = two_cliques
        empty = np.empty(0, dtype=np.int64)
        labels, union1, union2, _edges = union_label_propagation(
            index, empty, empty
        )
        assert (labels[union1] == -1).all()
        assert (labels[union2] == -1).all()

    def test_deterministic_across_repeats(self, two_cliques):
        _g, index, _seeds, seed_l, seed_r = two_cliques
        first = union_label_propagation(index, seed_l, seed_r)
        second = union_label_propagation(index, seed_l, seed_r)
        for a, b in zip(first, second):
            assert np.array_equal(a, b)


class TestAssignment:
    def test_cliques_become_separate_communities(self, two_cliques):
        _g, index, _seeds, seed_l, seed_r = two_cliques
        assignment = assign_communities(index, seed_l, seed_r)
        cmap1, cmap2 = assignment.community_maps(index)
        clique_a = {cmap1[n] for n in range(6)}
        clique_b = {cmap1[n] for n in range(10, 16)}
        assert len(clique_a) == 1 and len(clique_b) == 1
        assert clique_a != clique_b
        # Identical copies: both sides land in the same cell per node.
        assert cmap1 == cmap2
        assert assignment.num_communities == 2

    def test_frontier_zero_blocks_cross_clique_pairs(self, two_cliques):
        _g, index, _seeds, seed_l, seed_r = two_cliques
        assignment = assign_communities(
            index, seed_l, seed_r, frontier=0
        )
        cmap1, cmap2 = assignment.community_maps(index)
        assert assignment.allowed_communities(cmap1[1], cmap2[2])
        assert not assignment.allowed_communities(cmap1[1], cmap2[11])

    def test_frontier_one_allows_adjacent_communities(self, two_cliques):
        """The bridge makes the cliques quotient-adjacent: ring 1
        re-admits cross-clique pairs."""
        _g, index, _seeds, seed_l, seed_r = two_cliques
        assignment = assign_communities(
            index, seed_l, seed_r, frontier=1
        )
        cmap1, cmap2 = assignment.community_maps(index)
        assert assignment.allowed_communities(cmap1[1], cmap2[11])

    def test_mask_agrees_with_scalar_path(self, two_cliques):
        """allowed_mask (csr backends) and allowed_communities (dict
        backend) must implement the same relation — that agreement is
        what keeps the backends link-identical under pruning."""
        _g, index, _seeds, seed_l, seed_r = two_cliques
        assignment = assign_communities(index, seed_l, seed_r)
        left = np.arange(index.n1, dtype=np.int64).repeat(index.n2)
        right = np.tile(np.arange(index.n2, dtype=np.int64), index.n1)
        mask = assignment.allowed_mask(left, right)
        c1, c2 = assignment.comm1, assignment.comm2
        for v1, v2, allowed in zip(
            left.tolist(), right.tolist(), mask.tolist()
        ):
            assert allowed == assignment.allowed_communities(
                int(c1[v1]), int(c2[v2])
            )

    def test_unassigned_nodes_never_pruned(self):
        """Nodes no seed reaches keep -1 and pass every filter."""
        g = Graph.from_edges(clique_edges(list(range(4))))
        g.add_node(99)  # isolated: no label can ever reach it
        index = GraphPairIndex(g, g)
        seed_l, seed_r = index.intern_links({0: 0})
        assignment = assign_communities(index, seed_l, seed_r)
        cmap1, cmap2 = assignment.community_maps(index)
        assert cmap1[99] == -1
        assert assignment.allowed_communities(cmap1[99], cmap2[1])
        assert assignment.allowed_communities(cmap1[1], cmap2[99])
        iso = index.dense1(99)
        mask = assignment.allowed_mask(
            np.array([iso, iso]), np.array([index.dense2(1), iso])
        )
        assert mask.all()

    def test_empty_seed_assignment_allows_everything(self, two_cliques):
        _g, index, *_ = two_cliques
        empty = np.empty(0, dtype=np.int64)
        assignment = assign_communities(index, empty, empty)
        assert assignment.num_communities == 0
        left = np.arange(index.n1, dtype=np.int64)
        right = np.arange(index.n1, dtype=np.int64)
        assert assignment.allowed_mask(left, right).all()

    def test_assignment_for_matches_assign_communities(self, two_cliques):
        g, index, seeds, seed_l, seed_r = two_cliques
        direct = assign_communities(index, seed_l, seed_r)
        wrapped = assignment_for(g, g, seeds)
        assert np.array_equal(direct.comm1, wrapped.comm1)
        assert np.array_equal(direct.comm2, wrapped.comm2)
        assert np.array_equal(
            direct.allowed_keys, wrapped.allowed_keys
        )

    def test_insertion_order_invariance(self):
        """Canonical interning: the partition ignores edge order."""
        edges = clique_edges(list(range(5))) + [(4, 7), (7, 8), (7, 9)]
        g_fwd = Graph.from_edges(edges)
        g_rev = Graph.from_edges(list(reversed(edges)))
        seeds = {0: 0, 8: 8}
        maps_fwd = assignment_for(g_fwd, g_fwd, seeds).community_maps(
            GraphPairIndex(g_fwd, g_fwd)
        )
        maps_rev = assignment_for(g_rev, g_rev, seeds).community_maps(
            GraphPairIndex(g_rev, g_rev)
        )
        assert maps_fwd == maps_rev


class TestPruningEffect:
    def test_pruning_shrinks_candidates_on_community_workload(self):
        """On an affiliation workload the filter must actually bite:
        fewer candidate pairs scored, cost reported — not hidden."""
        network = affiliation_graph(300, 30, seed=5)
        pair = correlated_community_copies(
            network, keep_prob=0.8, seed=6
        )
        seeds = sample_seeds(pair, 0.08, seed=7)
        def run(mode):
            return UserMatching(
                MatcherConfig(
                    threshold=2,
                    iterations=2,
                    backend="csr",
                    candidate_pruning=mode,
                )
            ).run(pair.g1, pair.g2, seeds)

        unpruned = run("none")
        pruned = run("community")
        total = lambda r: sum(p.candidates for p in r.phases)  # noqa: E731
        assert 0 < total(pruned) < total(unpruned)
        assert pruned.links  # still links something

    def test_true_pairs_overwhelmingly_same_community(self):
        """The design claim: a true match's two copies see the same
        seed landscape, so they share a community far more often than
        random pairs do."""
        network = affiliation_graph(300, 30, seed=11)
        pair = correlated_community_copies(
            network, keep_prob=0.8, seed=12
        )
        seeds = sample_seeds(pair, 0.08, seed=13)
        index = GraphPairIndex(pair.g1, pair.g2)
        assignment = assignment_for(
            pair.g1, pair.g2, seeds, index=index
        )
        cmap1, cmap2 = assignment.community_maps(index)
        same = checked = 0
        for v1, v2 in pair.identity.items():
            c1, c2 = cmap1.get(v1), cmap2.get(v2)
            if c1 is None or c2 is None or c1 < 0 or c2 < 0:
                continue
            checked += 1
            same += c1 == c2
        assert checked > 50
        assert same / checked > 0.6
