"""Unit tests for k-core decomposition, cross-checked against networkx."""

import networkx as nx
import pytest

from repro.graphs.graph import Graph
from repro.graphs.kcore import core_numbers, degeneracy, k_core


class TestCoreNumbers:
    def test_triangle_core_two(self, triangle):
        assert core_numbers(triangle) == {0: 2, 1: 2, 2: 2}

    def test_path_core_one(self, path4):
        assert set(core_numbers(path4).values()) == {1}

    def test_star_core_one(self, star):
        cores = core_numbers(star)
        assert cores[0] == 1
        assert all(cores[i] == 1 for i in range(1, 6))

    def test_isolated_node_core_zero(self):
        g = Graph.from_edges([(0, 1)], nodes=[9])
        assert core_numbers(g)[9] == 0

    def test_empty_graph(self):
        assert core_numbers(Graph()) == {}

    def test_matches_networkx(self, small_pa):
        ours = core_numbers(small_pa)
        nxg = nx.Graph(list(small_pa.edges()))
        nxg.add_nodes_from(small_pa.nodes())
        theirs = nx.core_number(nxg)
        assert ours == theirs

    def test_matches_networkx_er(self, small_er):
        ours = core_numbers(small_er)
        nxg = nx.Graph(list(small_er.edges()))
        nxg.add_nodes_from(small_er.nodes())
        assert ours == nx.core_number(nxg)


class TestKCore:
    def test_k_core_min_degree(self, small_pa):
        sub = k_core(small_pa, 4)
        if sub.num_nodes:
            assert min(sub.degree(n) for n in sub.nodes()) >= 4

    def test_k_core_too_large_empty(self, path4):
        assert k_core(path4, 5).num_nodes == 0

    def test_degeneracy_clique(self):
        clique = Graph.from_edges(
            [(i, j) for i in range(5) for j in range(i + 1, 5)]
        )
        assert degeneracy(clique) == 4

    def test_degeneracy_empty(self):
        assert degeneracy(Graph()) == 0

    def test_pa_core_at_least_m(self):
        from repro.generators.preferential_attachment import (
            preferential_attachment_graph,
        )

        g = preferential_attachment_graph(800, 5, seed=1)
        # PA graphs have degeneracy close to m.
        assert degeneracy(g) >= 3
