"""Out-of-core pair index: npz spill + memory-mapped reopen lifecycle.

``GraphPairIndex.save_npz`` / ``open_mmap`` are the out-of-core
substrate behind ``MatcherConfig.mmap``; these tests pin the roundtrip
(bit-identical arrays, preserved node ids), the explicit lifecycle
(close is idempotent, reads after close raise
:class:`~repro.errors.MmapIndexClosedError`, never a fault on unmapped
pages), and that blocked execution over a mapped index stays
link-identical to the in-memory run.
"""

import numpy as np
import pytest

from repro.core.config import MatcherConfig
from repro.core.matcher import UserMatching
from repro.errors import MmapIndexClosedError, MmapIndexError
from repro.generators.preferential_attachment import (
    preferential_attachment_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.pair_index import GraphPairIndex, MmapGraphPairIndex
from repro.sampling.edge_sampling import independent_copies
from repro.seeds.generators import sample_seeds


@pytest.fixture
def spilled(tmp_path):
    """A small PA pair spilled to npz; returns (index, path)."""
    g = preferential_attachment_graph(120, 3, seed=0)
    pair = independent_copies(g, 0.7, seed=1)
    index = GraphPairIndex(pair.g1, pair.g2)
    path = tmp_path / "pair.npz"
    index.save_npz(path)
    return index, path


class TestRoundtrip:
    def test_arrays_bit_identical(self, spilled):
        index, path = spilled
        with GraphPairIndex.open_mmap(path) as mapped:
            assert isinstance(mapped, MmapGraphPairIndex)
            for side in ("1", "2"):
                eager = getattr(index, f"csr{side}")
                disk = getattr(mapped, f"csr{side}")
                assert np.array_equal(eager.indptr, disk.indptr)
                assert np.array_equal(eager.indices, disk.indices)
                assert list(eager.node_ids) == list(disk.node_ids)
            assert np.array_equal(index.deg1, mapped.deg1)
            assert np.array_equal(index.exp2, mapped.exp2)

    def test_mapped_index_is_graph_free(self, spilled):
        _index, path = spilled
        with GraphPairIndex.open_mmap(path) as mapped:
            assert mapped.g1 is None and mapped.g2 is None
            # Membership and link interning still work without graphs.
            node = mapped.csr1.node_ids[0]
            assert mapped.has1(node)
            assert not mapped.has1(object())
            left, right = mapped.intern_links({node: mapped.csr2.node_ids[0]})
            assert left[0] == 0 and right[0] == 0

    def test_string_node_ids_survive(self, tmp_path):
        g = Graph.from_edges([("a", "b"), ("b", "c"), ("a", "c")])
        index = GraphPairIndex(g, g)
        path = tmp_path / "str.npz"
        index.save_npz(path)
        with GraphPairIndex.open_mmap(path) as mapped:
            assert list(mapped.csr1.node_ids) == ["a", "b", "c"]
            assert mapped.has2("b")

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(MmapIndexError, match="does not exist"):
            GraphPairIndex.open_mmap(tmp_path / "nope.npz")

    def test_non_index_npz_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, something=np.arange(3))
        with pytest.raises(MmapIndexError, match="missing"):
            GraphPairIndex.open_mmap(path)


class TestLifecycle:
    def test_close_is_idempotent(self, spilled):
        _index, path = spilled
        mapped = GraphPairIndex.open_mmap(path)
        assert not mapped.closed
        mapped.close()
        assert mapped.closed
        mapped.close()  # double close: a no-op, not an error
        assert mapped.closed

    def test_read_after_close_fails_loudly(self, spilled):
        _index, path = spilled
        mapped = GraphPairIndex.open_mmap(path)
        mapped.close()
        with pytest.raises(MmapIndexClosedError, match="close"):
            mapped.csr1.indices[0]
        with pytest.raises(MmapIndexClosedError):
            len(mapped.csr2.indptr)
        with pytest.raises(MmapIndexClosedError):
            np.sum(mapped.csr1.indptr)

    def test_node_sized_state_survives_close(self, spilled):
        """Only the 2m adjacency is disk-backed; ids/degrees stay."""
        index, path = spilled
        mapped = GraphPairIndex.open_mmap(path)
        mapped.close()
        assert np.array_equal(mapped.deg1, index.deg1)
        assert mapped.has1(mapped.csr1.node_ids[0])
        assert "closed" in repr(mapped)

    def test_context_manager_closes(self, spilled):
        _index, path = spilled
        with GraphPairIndex.open_mmap(path) as mapped:
            assert not mapped.closed
        assert mapped.closed


class TestMatcherOverMmap:
    def workload(self):
        g = preferential_attachment_graph(300, 4, seed=3)
        pair = independent_copies(g, 0.6, seed=4)
        seeds = sample_seeds(pair, 0.1, seed=5)
        return pair, seeds

    def run(self, pair, seeds, **overrides):
        config = MatcherConfig(
            threshold=2, iterations=2, backend="csr", **overrides
        )
        return UserMatching(config).run(pair.g1, pair.g2, seeds)

    def test_mmap_links_identical(self):
        pair, seeds = self.workload()
        assert (
            self.run(pair, seeds, mmap=True).links
            == self.run(pair, seeds).links
        )

    def test_blocked_over_mmap_links_identical(self):
        """The satellite acceptance case: blocked execution streaming a
        memory-mapped adjacency must stay bit-identical."""
        pair, seeds = self.workload()
        reference = self.run(pair, seeds)
        blocked = self.run(
            pair, seeds, mmap=True, memory_budget_mb=1
        )
        assert blocked.links == reference.links
        assert blocked.seeds == reference.seeds

    def test_mmap_with_pruning_matches_unmapped_pruned(self):
        pair, seeds = self.workload()
        reference = self.run(pair, seeds, candidate_pruning="community")
        mapped = self.run(
            pair, seeds, candidate_pruning="community", mmap=True
        )
        assert mapped.links == reference.links
