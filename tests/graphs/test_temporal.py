"""Unit tests for the temporal graph substrate."""

import pytest

from repro.errors import GraphError
from repro.graphs.temporal import TemporalGraph


@pytest.fixture
def tg():
    return TemporalGraph.from_events(
        [(0, 1, 2000), (1, 2, 2001), (0, 1, 2002), (2, 3, 2001)]
    )


class TestTemporalBasics:
    def test_counts(self, tg):
        assert tg.num_nodes == 4
        assert tg.num_events == 4

    def test_multiplicity_preserved(self):
        tg = TemporalGraph.from_events([(0, 1, 5), (0, 1, 5)])
        assert tg.num_events == 2

    def test_self_event_rejected(self):
        tg = TemporalGraph()
        with pytest.raises(GraphError):
            tg.add_event(1, 1, 2000)

    def test_add_node_isolated(self):
        tg = TemporalGraph()
        tg.add_node(7)
        assert tg.num_nodes == 1
        assert tg.num_events == 0

    def test_timestamps_sorted_unique(self, tg):
        assert tg.timestamps() == [2000, 2001, 2002]

    def test_events_iteration_order(self, tg):
        assert list(tg.events())[0] == (0, 1, 2000)

    def test_repr(self, tg):
        assert "num_events=4" in repr(tg)


class TestSlicing:
    def test_slice_even(self, tg):
        g = tg.slice(lambda t: t % 2 == 0)
        assert g.has_edge(0, 1)
        assert not g.has_node(3)
        assert g.num_edges == 1  # the two (0,1) events collapse

    def test_slice_odd(self, tg):
        g = tg.slice(lambda t: t % 2 == 1)
        assert g.has_edge(1, 2)
        assert g.has_edge(2, 3)
        assert not g.has_edge(0, 1)

    def test_slice_keep_all_nodes(self, tg):
        g = tg.slice(lambda t: False, keep_all_nodes=True)
        assert g.num_nodes == 4
        assert g.num_edges == 0

    def test_slice_drops_isolated_by_default(self, tg):
        g = tg.slice(lambda t: t == 2000)
        assert sorted(g.nodes()) == [0, 1]

    def test_slice_range(self, tg):
        g = tg.slice_range(2000, 2002)
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 2)
        assert g.num_edges == 3

    def test_slice_range_empty(self, tg):
        g = tg.slice_range(1990, 1991)
        assert g.num_nodes == 0

    def test_repeated_event_is_one_edge(self):
        tg = TemporalGraph.from_events([(0, 1, 0), (0, 1, 2), (1, 0, 4)])
        g = tg.slice(lambda t: True)
        assert g.num_edges == 1
