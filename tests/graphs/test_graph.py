"""Unit tests for the core Graph substrate."""

import pytest

from repro.errors import EdgeNotFoundError, GraphError, NodeNotFoundError
from repro.graphs.graph import Graph


class TestConstruction:
    def test_empty_graph(self):
        g = Graph()
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert list(g.nodes()) == []
        assert list(g.edges()) == []

    def test_from_edges(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        assert g.num_nodes == 3
        assert g.num_edges == 2

    def test_from_edges_with_isolated_nodes(self):
        g = Graph.from_edges([(0, 1)], nodes=[5, 6])
        assert g.has_node(5)
        assert g.has_node(6)
        assert g.degree(5) == 0
        assert g.num_nodes == 4

    def test_from_edges_deduplicates(self):
        g = Graph.from_edges([(0, 1), (0, 1), (1, 0)])
        assert g.num_edges == 1

    def test_copy_is_independent(self):
        g = Graph.from_edges([(0, 1)])
        h = g.copy()
        h.add_edge(1, 2)
        assert g.num_edges == 1
        assert h.num_edges == 2
        assert not g.has_node(2)

    def test_copy_equality(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        assert g.copy() == g


class TestMutation:
    def test_add_node_idempotent(self):
        g = Graph()
        g.add_node(1)
        g.add_node(1)
        assert g.num_nodes == 1

    def test_add_edge_creates_endpoints(self):
        g = Graph()
        assert g.add_edge(0, 1) is True
        assert g.has_node(0)
        assert g.has_node(1)

    def test_add_edge_duplicate_returns_false(self):
        g = Graph()
        g.add_edge(0, 1)
        assert g.add_edge(0, 1) is False
        assert g.add_edge(1, 0) is False
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_edge(3, 3)

    def test_add_edges_counts_new(self):
        g = Graph()
        assert g.add_edges([(0, 1), (1, 2), (0, 1)]) == 2

    def test_remove_edge(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        g.remove_edge(0, 1)
        assert not g.has_edge(0, 1)
        assert g.num_edges == 1
        assert g.has_node(0)  # endpoints stay

    def test_remove_missing_edge_raises(self):
        g = Graph.from_edges([(0, 1)])
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge(0, 2)

    def test_remove_node_removes_incident_edges(self, star):
        star.remove_node(0)
        assert star.num_edges == 0
        assert star.num_nodes == 5

    def test_remove_missing_node_raises(self):
        g = Graph()
        with pytest.raises(NodeNotFoundError):
            g.remove_node(9)


class TestQueries:
    def test_neighbors(self, triangle):
        assert triangle.neighbors(0) == {1, 2}

    def test_neighbors_missing_raises(self, triangle):
        with pytest.raises(NodeNotFoundError):
            triangle.neighbors(99)

    def test_degree(self, star):
        assert star.degree(0) == 5
        assert star.degree(1) == 1

    def test_degrees_map(self, path4):
        assert path4.degrees() == {0: 1, 1: 2, 2: 2, 3: 1}

    def test_max_degree(self, star):
        assert star.max_degree() == 5

    def test_max_degree_empty(self):
        assert Graph().max_degree() == 0

    def test_common_neighbors(self):
        g = Graph.from_edges([(0, 2), (1, 2), (0, 3), (1, 3), (0, 4)])
        assert g.common_neighbors(0, 1) == {2, 3}

    def test_common_neighbors_none(self, path4):
        assert path4.common_neighbors(0, 1) == set()

    def test_has_edge_missing_node(self):
        g = Graph.from_edges([(0, 1)])
        assert not g.has_edge(7, 8)


class TestIteration:
    def test_edges_reported_once(self, triangle):
        edges = list(triangle.edges())
        assert len(edges) == 3
        canonical = {frozenset(e) for e in edges}
        assert len(canonical) == 3

    def test_edge_count_matches_iteration(self, small_pa):
        assert sum(1 for _ in small_pa.edges()) == small_pa.num_edges

    def test_handshake_lemma(self, small_pa):
        total_degree = sum(small_pa.degree(n) for n in small_pa.nodes())
        assert total_degree == 2 * small_pa.num_edges

    def test_contains_and_len(self, triangle):
        assert 0 in triangle
        assert 99 not in triangle
        assert len(triangle) == 3

    def test_iter_yields_nodes(self, triangle):
        assert sorted(triangle) == [0, 1, 2]

    def test_repr(self, triangle):
        assert "num_nodes=3" in repr(triangle)
        assert "num_edges=3" in repr(triangle)


class TestNodeIdFlexibility:
    def test_string_node_ids(self):
        g = Graph.from_edges([("a", "b"), ("b", "c")])
        assert g.degree("b") == 2

    def test_tuple_node_ids(self):
        g = Graph()
        g.add_edge(("sybil", 1), 1)
        assert g.has_edge(1, ("sybil", 1))

    def test_mixed_node_ids(self):
        g = Graph.from_edges([(1, "one")])
        assert g.has_edge("one", 1)


class TestEquality:
    def test_equal_graphs(self):
        a = Graph.from_edges([(0, 1), (1, 2)])
        b = Graph.from_edges([(1, 2), (0, 1)])
        assert a == b

    def test_unequal_graphs(self):
        a = Graph.from_edges([(0, 1)])
        b = Graph.from_edges([(0, 2)])
        assert a != b

    def test_not_equal_to_other_types(self):
        assert Graph() != 42
