"""Unit tests for structural graph operations."""

import pytest

from repro.errors import GraphError, NodeNotFoundError
from repro.graphs.graph import Graph
from repro.graphs.ops import (
    compose_disjoint,
    connected_components,
    edge_subgraph,
    induced_subgraph,
    intersection,
    largest_component,
    relabel,
    union,
)


class TestInducedSubgraph:
    def test_induced(self, triangle):
        sub = induced_subgraph(triangle, [0, 1])
        assert sub.num_nodes == 2
        assert sub.has_edge(0, 1)

    def test_induced_missing_node_raises(self, triangle):
        with pytest.raises(NodeNotFoundError):
            induced_subgraph(triangle, [0, 42])

    def test_induced_keeps_isolated(self, path4):
        sub = induced_subgraph(path4, [0, 2])
        assert sub.num_nodes == 2
        assert sub.num_edges == 0


class TestEdgeSubgraph:
    def test_keep_all_nodes(self, triangle):
        sub = edge_subgraph(triangle, lambda u, v: False)
        assert sub.num_nodes == 3
        assert sub.num_edges == 0

    def test_predicate_filtering(self, path4):
        sub = edge_subgraph(path4, lambda u, v: u + v > 2)
        assert not sub.has_edge(0, 1)
        assert sub.has_edge(2, 3)

    def test_drop_isolated(self, path4):
        sub = edge_subgraph(path4, lambda u, v: u == 0, keep_all_nodes=False)
        assert sorted(sub.nodes()) == [0, 1]


class TestIntersectionUnion:
    def test_intersection_edges(self):
        a = Graph.from_edges([(0, 1), (1, 2), (2, 3)])
        b = Graph.from_edges([(0, 1), (2, 3), (1, 3)])
        inter = intersection(a, b)
        assert inter.has_edge(0, 1)
        assert inter.has_edge(2, 3)
        assert not inter.has_edge(1, 2)
        assert not inter.has_edge(1, 3)

    def test_intersection_nodes(self):
        a = Graph.from_edges([(0, 1)], nodes=[5])
        b = Graph.from_edges([(0, 1)], nodes=[6])
        inter = intersection(a, b)
        assert not inter.has_node(5)
        assert not inter.has_node(6)

    def test_union(self):
        a = Graph.from_edges([(0, 1)])
        b = Graph.from_edges([(1, 2)])
        u = union(a, b)
        assert u.num_edges == 2
        assert u.num_nodes == 3

    def test_union_does_not_mutate(self):
        a = Graph.from_edges([(0, 1)])
        b = Graph.from_edges([(1, 2)])
        union(a, b)
        assert a.num_edges == 1

    def test_intersection_subset_of_both(self, small_pa, pa_pair):
        inter = intersection(pa_pair.g1, pa_pair.g2)
        for u, v in inter.edges():
            assert pa_pair.g1.has_edge(u, v)
            assert pa_pair.g2.has_edge(u, v)


class TestRelabel:
    def test_relabel_isomorphic(self, triangle):
        mapping = {0: "a", 1: "b", 2: "c"}
        out = relabel(triangle, mapping)
        assert out.has_edge("a", "b")
        assert out.num_edges == triangle.num_edges

    def test_relabel_missing_key_raises(self, triangle):
        with pytest.raises(NodeNotFoundError):
            relabel(triangle, {0: "a", 1: "b"})

    def test_relabel_non_injective_raises(self, triangle):
        with pytest.raises(GraphError):
            relabel(triangle, {0: "a", 1: "a", 2: "c"})

    def test_relabel_preserves_degrees(self, small_pa):
        mapping = {n: n + 10_000 for n in small_pa.nodes()}
        out = relabel(small_pa, mapping)
        for node in small_pa.nodes():
            assert out.degree(node + 10_000) == small_pa.degree(node)


class TestComposeDisjoint:
    def test_compose(self):
        a = Graph.from_edges([(0, 1)])
        b = Graph.from_edges([(10, 11)])
        c = compose_disjoint(a, b)
        assert c.num_edges == 2
        assert c.num_nodes == 4

    def test_overlap_raises(self):
        a = Graph.from_edges([(0, 1)])
        b = Graph.from_edges([(1, 2)])
        with pytest.raises(GraphError):
            compose_disjoint(a, b)


class TestComponents:
    def test_components_sorted_by_size(self):
        g = Graph.from_edges([(0, 1), (1, 2), (10, 11)])
        comps = connected_components(g)
        assert len(comps) == 2
        assert comps[0] == {0, 1, 2}
        assert comps[1] == {10, 11}

    def test_isolated_nodes_are_components(self):
        g = Graph.from_edges([(0, 1)], nodes=[9])
        comps = connected_components(g)
        assert {9} in comps

    def test_largest_component(self):
        g = Graph.from_edges([(0, 1), (1, 2), (10, 11)])
        big = largest_component(g)
        assert sorted(big.nodes()) == [0, 1, 2]

    def test_largest_component_empty_graph(self):
        assert largest_component(Graph()).num_nodes == 0

    def test_components_cover_all_nodes(self, small_pa):
        comps = connected_components(small_pa)
        covered = set().union(*comps)
        assert covered == set(small_pa.nodes())
