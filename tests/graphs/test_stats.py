"""Unit tests for graph statistics, cross-validated against networkx."""

import math

import networkx as nx
import pytest

from repro.graphs.graph import Graph
from repro.graphs.stats import (
    average_clustering,
    average_degree,
    degree_array,
    degree_assortativity,
    degree_ccdf,
    degree_histogram,
    entropy_of_degrees,
    gini_coefficient,
    local_clustering,
    power_law_alpha_hill,
    summarize,
)


def to_nx(g: Graph) -> nx.Graph:
    out = nx.Graph()
    out.add_nodes_from(g.nodes())
    out.add_edges_from(g.edges())
    return out


class TestDegreeStats:
    def test_histogram(self, star):
        assert degree_histogram(star) == {5: 1, 1: 5}

    def test_degree_array_sum(self, small_pa):
        assert degree_array(small_pa).sum() == 2 * small_pa.num_edges

    def test_average_degree(self, triangle):
        assert average_degree(triangle) == 2.0

    def test_average_degree_empty(self):
        assert average_degree(Graph()) == 0.0

    def test_ccdf_starts_at_one(self, small_pa):
        ccdf = degree_ccdf(small_pa)
        assert ccdf[0][1] == pytest.approx(1.0)

    def test_ccdf_monotone_decreasing(self, small_pa):
        values = [p for _, p in degree_ccdf(small_pa)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_ccdf_empty(self):
        assert degree_ccdf(Graph()) == []


class TestClustering:
    def test_triangle_clustering(self, triangle):
        assert local_clustering(triangle, 0) == 1.0

    def test_path_clustering(self, path4):
        assert local_clustering(path4, 1) == 0.0

    def test_degree_below_two_is_zero(self, star):
        assert local_clustering(star, 1) == 0.0

    def test_average_clustering_matches_networkx(self, small_pa):
        ours = average_clustering(small_pa)
        theirs = nx.average_clustering(to_nx(small_pa))
        assert ours == pytest.approx(theirs, abs=1e-9)

    def test_sampled_clustering_close(self, small_pa):
        full = average_clustering(small_pa)
        sampled = average_clustering(small_pa, sample=300, seed=1)
        assert sampled == pytest.approx(full, abs=0.1)


class TestAssortativityAndGini:
    def test_assortativity_matches_networkx(self, small_pa):
        ours = degree_assortativity(small_pa)
        theirs = nx.degree_assortativity_coefficient(to_nx(small_pa))
        assert ours == pytest.approx(theirs, abs=1e-6)

    def test_assortativity_empty_is_nan(self):
        assert math.isnan(degree_assortativity(Graph()))

    def test_gini_regular_graph_zero(self, triangle):
        assert gini_coefficient(triangle) == pytest.approx(0.0, abs=1e-9)

    def test_gini_star_is_skewed(self, star):
        assert gini_coefficient(star) > 0.3

    def test_gini_within_unit_interval(self, small_pa):
        assert 0.0 <= gini_coefficient(small_pa) <= 1.0


class TestPowerLawAndSummary:
    def test_pa_alpha_near_three(self):
        from repro.generators.preferential_attachment import (
            preferential_attachment_graph,
        )

        g = preferential_attachment_graph(5000, 4, seed=3)
        alpha = power_law_alpha_hill(g, dmin=8)
        assert 2.0 < alpha < 4.5

    def test_alpha_nan_for_tiny_graph(self, triangle):
        assert math.isnan(power_law_alpha_hill(triangle, dmin=10))

    def test_summarize_keys(self, small_pa):
        s = summarize(small_pa)
        assert s["nodes"] == small_pa.num_nodes
        assert s["edges"] == small_pa.num_edges
        assert s["max_degree"] >= s["median_degree"]

    def test_entropy_regular_graph_zero(self, triangle):
        assert entropy_of_degrees(triangle) == pytest.approx(0.0)

    def test_entropy_positive_for_mixed(self, star):
        assert entropy_of_degrees(star) > 0.0

    def test_entropy_empty(self):
        assert entropy_of_degrees(Graph()) == 0.0
