"""Unit tests for the local MapReduce engine."""

import pytest

from repro.errors import MapReduceError
from repro.mapreduce.engine import LocalMapReduce, MapReduceJob, sum_combiner


def word_count_job():
    def map_fn(_key, text):
        for word in text.split():
            yield (word, 1)

    def reduce_fn(word, counts):
        yield (word, sum(counts))

    return MapReduceJob("word-count", map_fn, reduce_fn, sum_combiner)


class TestEngine:
    def test_word_count(self):
        engine = LocalMapReduce()
        records = [(0, "a b a"), (1, "b c")]
        out = dict(engine.run(word_count_job(), records))
        assert out == {"a": 2, "b": 2, "c": 1}

    def test_partition_count_does_not_change_result(self):
        records = [(i, "x y z x") for i in range(20)]
        results = []
        for partitions in (1, 2, 7, 32):
            engine = LocalMapReduce(partitions=partitions)
            results.append(sorted(engine.run(word_count_job(), records)))
        assert all(r == results[0] for r in results)

    def test_combiner_shrinks_shuffle(self):
        records = [(i, "a a a a") for i in range(10)]
        with_combiner = LocalMapReduce()
        with_combiner.run(word_count_job(), records)
        job_no_comb = word_count_job()
        job_no_comb.combine_fn = None
        without = LocalMapReduce()
        without.run(job_no_comb, records)
        assert (
            with_combiner.history[0].shuffled_records
            < without.history[0].shuffled_records
        )

    def test_history_records_rounds(self):
        engine = LocalMapReduce()
        engine.run(word_count_job(), [(0, "a")])
        engine.run(word_count_job(), [(0, "b")])
        assert engine.rounds_executed == 2
        assert engine.history[0].name == "word-count"

    def test_reset(self):
        engine = LocalMapReduce()
        engine.run(word_count_job(), [(0, "a")])
        engine.reset()
        assert engine.rounds_executed == 0

    def test_stats_consistency(self):
        engine = LocalMapReduce()
        records = [(0, "a b"), (1, "c")]
        engine.run(word_count_job(), records)
        stats = engine.history[0]
        assert stats.input_records == 2
        assert stats.mapped_records == 3
        assert stats.output_records == 3

    def test_empty_input(self):
        engine = LocalMapReduce()
        assert engine.run(word_count_job(), []) == []

    def test_invalid_partitions(self):
        engine = LocalMapReduce(partitions=0)
        with pytest.raises(MapReduceError):
            engine.run(word_count_job(), [(0, "a")])

    def test_reducer_can_emit_multiple(self):
        def map_fn(key, value):
            yield (value % 2, value)

        def reduce_fn(parity, values):
            for v in sorted(values):
                yield (parity, v)

        engine = LocalMapReduce()
        out = engine.run(
            MapReduceJob("expand", map_fn, reduce_fn),
            [(i, i) for i in range(6)],
        )
        assert len(out) == 6

    def test_sum_combiner(self):
        assert sum_combiner("k", [1, 2, 3]) == [6]


class TestShardedReduce:
    """workers > 1 shards the reduce phase without changing anything."""

    def test_worker_count_does_not_change_result(self):
        records = [(i, "x y z x w q") for i in range(20)]
        reference = LocalMapReduce().run(word_count_job(), records)
        for workers in (2, 3, 8, 64):
            engine = LocalMapReduce(workers=workers)
            assert engine.run(word_count_job(), records) == reference

    def test_output_order_identical_to_serial(self):
        """Byte-identical output: per-key results reassemble in order."""

        def map_fn(_key, value):
            yield (value % 5, value)

        def reduce_fn(bucket, values):
            for v in sorted(values):
                yield (bucket, v)

        job = MapReduceJob("expand", map_fn, reduce_fn)
        records = [(i, i) for i in range(37)]
        serial = LocalMapReduce().run(job, records)
        sharded = LocalMapReduce(workers=4).run(job, records)
        assert sharded == serial

    def test_more_workers_than_keys(self):
        engine = LocalMapReduce(workers=16)
        out = dict(engine.run(word_count_job(), [(0, "a b")]))
        assert out == {"a": 1, "b": 1}

    def test_invalid_workers(self):
        engine = LocalMapReduce(workers=0)
        with pytest.raises(MapReduceError):
            engine.run(word_count_job(), [(0, "a")])

    def test_stats_unchanged_by_workers(self):
        records = [(0, "a b a"), (1, "b c")]
        serial = LocalMapReduce()
        serial.run(word_count_job(), records)
        sharded = LocalMapReduce(workers=3)
        sharded.run(word_count_job(), records)
        assert serial.history == sharded.history
