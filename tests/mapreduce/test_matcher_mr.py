"""Equivalence tests: MapReduce matcher vs the sequential implementation.

The MR matcher is the literal 4-rounds-per-bucket transcription of the
paper; the sequential matcher uses the deferred incremental witness table.
They must produce identical links under every configuration.
"""

import pytest

from repro.core.config import MatcherConfig, TiePolicy
from repro.core.matcher import UserMatching
from repro.generators.erdos_renyi import gnp_graph
from repro.generators.preferential_attachment import (
    preferential_attachment_graph,
)
from repro.mapreduce.engine import LocalMapReduce
from repro.mapreduce.matcher_mr import MapReduceUserMatching
from repro.sampling.edge_sampling import independent_copies
from repro.seeds.generators import sample_seeds

CONFIGS = [
    MatcherConfig(threshold=2, iterations=1),
    MatcherConfig(threshold=2, iterations=2),
    MatcherConfig(threshold=1, iterations=2, min_bucket_exponent=0),
    MatcherConfig(threshold=3, iterations=2),
    MatcherConfig(threshold=2, iterations=2, use_degree_buckets=False),
    MatcherConfig(
        threshold=2,
        iterations=2,
        use_degree_buckets=False,
        min_bucket_exponent=0,
    ),
    MatcherConfig(
        threshold=2, iterations=2, tie_policy=TiePolicy.LOWEST_ID
    ),
    MatcherConfig(threshold=2, iterations=2, max_degree=8),
]


@pytest.fixture(scope="module")
def workloads():
    out = []
    pa = preferential_attachment_graph(500, 5, seed=7)
    pair = independent_copies(pa, 0.6, seed=8)
    out.append((pair, sample_seeds(pair, 0.1, seed=9)))
    er = gnp_graph(250, 0.06, seed=10)
    pair2 = independent_copies(er, 0.7, seed=11)
    out.append((pair2, sample_seeds(pair2, 0.12, seed=12)))
    return out


class TestEquivalence:
    @pytest.mark.parametrize("config", CONFIGS, ids=str)
    def test_links_identical(self, workloads, config):
        for pair, seeds in workloads:
            seq = UserMatching(config).run(pair.g1, pair.g2, seeds)
            mr = MapReduceUserMatching(config).run(pair.g1, pair.g2, seeds)
            assert seq.links == mr.links

    def test_phase_structure_matches(self, workloads):
        config = MatcherConfig(threshold=2, iterations=1)
        pair, seeds = workloads[0]
        seq = UserMatching(config).run(pair.g1, pair.g2, seeds)
        mr = MapReduceUserMatching(config).run(pair.g1, pair.g2, seeds)
        assert len(seq.phases) == len(mr.phases)
        for a, b in zip(seq.phases, mr.phases):
            assert a.bucket_exponent == b.bucket_exponent
            assert a.links_added == b.links_added


class TestRoundAccounting:
    def test_four_rounds_per_bucket(self, workloads):
        """The paper's claim: each bucket pass is 4 MapReduce rounds."""
        pair, seeds = workloads[0]
        engine = LocalMapReduce()
        config = MatcherConfig(threshold=2, iterations=1)
        matcher = MapReduceUserMatching(config, engine=engine)
        result = matcher.run(pair.g1, pair.g2, seeds)
        assert engine.rounds_executed == 4 * len(result.phases)

    def test_round_names_cycle(self, workloads):
        pair, seeds = workloads[0]
        engine = LocalMapReduce()
        matcher = MapReduceUserMatching(
            MatcherConfig(threshold=2, iterations=1), engine=engine
        )
        matcher.run(pair.g1, pair.g2, seeds)
        names = [s.name for s in engine.history[:4]]
        assert names == [
            "expand-left",
            "expand-right",
            "left-best",
            "right-best",
        ]

    def test_o_k_log_d_rounds(self, workloads):
        """Total rounds = 4 * k * (log D - floor + 1) when no early stop."""
        pair, seeds = workloads[0]
        engine = LocalMapReduce()
        config = MatcherConfig(threshold=2, iterations=1)
        matcher = MapReduceUserMatching(config, engine=engine)
        matcher.run(pair.g1, pair.g2, seeds)
        d = max(pair.g1.max_degree(), pair.g2.max_degree())
        buckets = d.bit_length() - 1  # logD ... 1
        assert engine.rounds_executed == 4 * buckets
